// Package maporder flags range statements over maps whose iteration order
// can escape into observable state — report tables, trace renderings, or
// request-queue ordering. Go randomizes map iteration, so any such range
// is a run-to-run divergence waiting to happen, which the chaos
// experiment's determinism re-run would report as corruption.
//
// Three body shapes are recognized as order-independent and allowed
// without annotation:
//
//   - pure commutative reduction: only ++/--, op= assignments, delete
//     calls, and if statements wrapping the same;
//   - keyed rebuild: `m[k] = expr` where k is the range key and expr has
//     no observable side effects — each key is written exactly once, so
//     order cannot matter (expr reading other keys of m is not caught);
//   - collect-then-sort: a single `s = append(s, k)`, optionally behind
//     side-effect-free if guards, whose target is passed to a sort call
//     later in the same function.
//
// Everything else must iterate over sorted keys or carry a
// //simcheck:allow maporder annotation. Test files are skipped.
//
// The local check alone can be laundered: checked code calls a helper in
// the exempt locks/ layer (or in a test file) and the map range happens
// there. The interprocedural pass walks the module call graph's map-range
// facts through the exempt zone and reports the call site in checked code
// that reaches one.
package maporder

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"strings"

	"mpicontend/internal/analysis"
	"mpicontend/internal/analysis/callgraph"
)

// Analyzer is the maporder rule.
var Analyzer = &analysis.Analyzer{
	Name: "maporder",
	Doc: "forbid ranging over maps where the nondeterministic iteration " +
		"order can reach output or queue ordering; iterate sorted keys or " +
		"reduce commutatively",
	Applies: func(path string) bool {
		return !analysis.PathHasSegment(path, "locks")
	},
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		// enclosing tracks the function body a range statement sits in,
		// for the collect-then-sort lookahead.
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pass.Info.Types[rs.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			if orderIndependent(rs.Body.List, keyName(rs)) {
				return true
			}
			if collectThenSort(rs, enclosingBody(stack)) {
				return true
			}
			pass.Reportf(rs.Pos(),
				"range over map %s has nondeterministic iteration order; iterate sorted keys, reduce commutatively, or annotate with //simcheck:allow maporder <reason>",
				exprText(rs.X))
			return true
		})
	}
	reportLaundering(pass)
	return nil
}

// exemptZone marks the code outside maporder's local check: the
// real-threads lock library and test files.
func exemptZone(g *callgraph.Graph) func(*callgraph.Node) bool {
	return func(n *callgraph.Node) bool {
		if analysis.PathHasSegment(n.Unit.Path, "locks") {
			return true
		}
		return strings.HasSuffix(g.Fset.Position(n.Decl.Pos()).Filename, "_test.go")
	}
}

// launderCache memoizes the zone witnesses per call graph; RunAll invokes
// the analyzer once per package with the same shared graph.
var launderCache = map[*callgraph.Graph]map[*callgraph.Node]*callgraph.Witness{}

// reportLaundering flags calls from checked non-test code into
// exempt-zone functions that range over a map: the range is invisible to
// the local check but its iteration order still leaks into the caller.
func reportLaundering(pass *analysis.Pass) {
	g := pass.Graph
	if g == nil {
		return
	}
	wits, ok := launderCache[g]
	if !ok {
		wits = g.Witnesses(func(n *callgraph.Node) *callgraph.Op {
			if n.Facts == nil || len(n.Facts.MapRanges) == 0 {
				return nil
			}
			return &n.Facts.MapRanges[0]
		}, exemptZone(g))
		launderCache[g] = wits
	}
	for _, key := range g.Keys() {
		n := g.Lookup(key)
		if n.Unit.Pkg != pass.Pkg {
			continue
		}
		if strings.HasSuffix(pass.Fset.Position(n.Decl.Pos()).Filename, "_test.go") {
			continue
		}
		for _, e := range n.Edges {
			if e.Kind == callgraph.EdgeDynamic {
				continue
			}
			for _, callee := range g.Callees(e) {
				w := wits[callee]
				if w == nil {
					continue
				}
				p := pass.Fset.Position(w.Op.Pos)
				pass.Reportf(e.Pos,
					"call to %s ranges over a map (line %d) in check-exempt code; the nondeterministic order can leak back — sort there, or annotate with //simcheck:allow maporder <reason>",
					callee.Key, p.Line)
				break
			}
		}
	}
}

// keyName returns the name of the range statement's key variable, or ""
// when there is none (then the keyed-rebuild shape cannot apply).
func keyName(rs *ast.RangeStmt) string {
	if id, ok := rs.Key.(*ast.Ident); ok && id.Name != "_" {
		return id.Name
	}
	return ""
}

// orderIndependent reports whether every statement is a commutative
// reduction step (or a keyed rebuild through the range key `key`), so
// iteration order cannot be observed.
func orderIndependent(list []ast.Stmt, key string) bool {
	for _, stmt := range list {
		switch s := stmt.(type) {
		case *ast.IncDecStmt:
		case *ast.AssignStmt:
			switch s.Tok {
			case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN,
				token.QUO_ASSIGN, token.REM_ASSIGN, token.AND_ASSIGN,
				token.OR_ASSIGN, token.XOR_ASSIGN, token.SHL_ASSIGN,
				token.SHR_ASSIGN, token.AND_NOT_ASSIGN:
			case token.ASSIGN:
				if !keyedRebuild(s, key) {
					return false
				}
			default:
				return false
			}
		case *ast.ExprStmt:
			call, ok := s.X.(*ast.CallExpr)
			if !ok {
				return false
			}
			if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "delete" {
				return false
			}
		case *ast.IfStmt:
			if s.Init != nil {
				return false
			}
			if !orderIndependent(s.Body.List, key) {
				return false
			}
			switch e := s.Else.(type) {
			case nil:
			case *ast.BlockStmt:
				if !orderIndependent(e.List, key) {
					return false
				}
			case *ast.IfStmt:
				if !orderIndependent([]ast.Stmt{e}, key) {
					return false
				}
			default:
				return false
			}
		case *ast.BranchStmt:
			if s.Tok != token.CONTINUE {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// keyedRebuild recognizes `m[k] = expr` where k is the range key: every
// key is visited exactly once, so the writes commute as long as expr has
// no observable side effects. Reading other keys of the written map would
// break this; that is rare enough not to be modeled.
func keyedRebuild(s *ast.AssignStmt, key string) bool {
	if key == "" || len(s.Lhs) != 1 || len(s.Rhs) != 1 {
		return false
	}
	ix, ok := s.Lhs[0].(*ast.IndexExpr)
	if !ok {
		return false
	}
	id, ok := ix.Index.(*ast.Ident)
	if !ok || id.Name != key {
		return false
	}
	return sideEffectFree(s.Rhs[0])
}

// pureBuiltin lists the builtins sideEffectFree accepts as calls.
var pureBuiltin = map[string]bool{
	"append": true, "len": true, "cap": true,
	"make": true, "new": true, "min": true, "max": true,
}

// sideEffectFree conservatively reports whether evaluating e cannot have
// observable effects: no calls except pure builtins and slice/map-type
// conversions, no channel receives, no function literals.
func sideEffectFree(e ast.Expr) bool {
	ok := true
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			switch f := n.Fun.(type) {
			case *ast.Ident:
				if !pureBuiltin[f.Name] {
					ok = false
				}
			case *ast.ArrayType, *ast.MapType:
				// type conversion such as []site(nil): effect-free
			default:
				ok = false
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				ok = false
			}
		case *ast.FuncLit:
			ok = false
		}
		return ok
	})
	return ok
}

// collectThenSort recognizes the `for k := range m { s = append(s, k) }`
// idiom followed by a sort call on s later in the enclosing function. The
// append may sit behind side-effect-free if guards (filtered collection):
// which keys are kept is order-independent, and the sort fixes the order.
func collectThenSort(rs *ast.RangeStmt, body *ast.BlockStmt) bool {
	if body == nil {
		return false
	}
	stmts := rs.Body.List
	for len(stmts) == 1 {
		ifs, ok := stmts[0].(*ast.IfStmt)
		if !ok {
			break
		}
		if ifs.Init != nil || ifs.Else != nil || !sideEffectFree(ifs.Cond) {
			return false
		}
		stmts = ifs.Body.List
	}
	if len(stmts) != 1 {
		return false
	}
	as, ok := stmts[0].(*ast.AssignStmt)
	if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 ||
		(as.Tok != token.ASSIGN && as.Tok != token.DEFINE) {
		return false
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok {
		return false
	}
	if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "append" {
		return false
	}
	target := exprText(as.Lhs[0])
	sorted := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() <= rs.End() || len(call.Args) == 0 {
			return true
		}
		if isSortCall(call.Fun) && exprText(call.Args[0]) == target {
			sorted = true
		}
		return true
	})
	return sorted
}

// isSortCall recognizes package sort calls and project sort helpers
// (functions whose name starts with sort/Sort, like sortKmers).
func isSortCall(fun ast.Expr) bool {
	switch f := fun.(type) {
	case *ast.SelectorExpr:
		if id, ok := f.X.(*ast.Ident); ok && id.Name == "sort" {
			return true
		}
		return strings.HasPrefix(f.Sel.Name, "sort") || strings.HasPrefix(f.Sel.Name, "Sort")
	case *ast.Ident:
		return strings.HasPrefix(f.Name, "sort") || strings.HasPrefix(f.Name, "Sort")
	}
	return false
}

// enclosingBody returns the body of the innermost function enclosing the
// node on top of the stack.
func enclosingBody(stack []ast.Node) *ast.BlockStmt {
	for i := len(stack) - 1; i >= 0; i-- {
		switch f := stack[i].(type) {
		case *ast.FuncDecl:
			return f.Body
		case *ast.FuncLit:
			return f.Body
		}
	}
	return nil
}

// exprText renders an expression as source text for diagnostics.
func exprText(e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, token.NewFileSet(), e); err != nil {
		return "?"
	}
	return buf.String()
}
