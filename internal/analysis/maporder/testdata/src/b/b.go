// Package b is checked code calling into the exempt stats layer; the map
// range it reaches lives entirely in that layer.
package b

import stats "mpicontend/locks/stats"

func use(m map[int]int) []int {
	return stats.Keys(m) // want `ranges over a map \(line \d+\) in check-exempt code`
}

func quiet(m map[int]int) int {
	return stats.Size(m)
}

func allowed(m map[int]int) []int {
	return stats.Keys(m) //simcheck:allow maporder consumer sorts the keys itself
}
