// Package stats models the check-exempt layer for the maporder
// cross-package golden test: its map ranges are not checked locally, but
// checked callers must not launder iteration order through it.
package stats

// Keys collects map keys in iteration order — order-leaking, but exempt
// from the local check here.
func Keys(m map[int]int) []int {
	var out []int
	for k := range m {
		out = append(out, k)
	}
	return out
}

// Size touches no map iteration; calling it from checked code is fine.
func Size(m map[int]int) int { return len(m) }
