// Package a is golden-test input for the maporder analyzer: map ranges
// whose iteration order can escape must be flagged; commutative reductions
// and the collect-then-sort idiom must not.
package a

import (
	"fmt"
	"sort"
)

func leaky(m map[string]int) {
	for k := range m { // want `range over map m has nondeterministic iteration order`
		fmt.Println(k)
	}
}

// ordering order matters for appends that are never sorted.
func ordering(m map[string]int) []string {
	var out []string
	for k := range m { // want `range over map m has nondeterministic iteration order`
		out = append(out, k)
	}
	return out
}

// reduce is a pure commutative reduction: order cannot be observed.
func reduce(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// prune mixes delete, continue, and an if-wrapped reduction — all
// order-independent shapes.
func prune(m map[string]int) int {
	kept := 0
	for k, v := range m {
		if v == 0 {
			delete(m, k)
			continue
		}
		kept++
	}
	return kept
}

// collect uses the collect-then-sort idiom: allowed without annotation.
func collect(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// collectCustom sorts through a project helper whose name marks it a sort.
func collectCustom(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sortKeys(keys)
	return keys
}

func sortKeys(s []string) { sort.Strings(s) }

// rebuild writes each key exactly once with an effect-free value: the
// keyed-rebuild shape, order-independent without annotation.
func rebuild(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v * 2
	}
	return out
}

// rebuildGuarded mixes the keyed rebuild with an if guard.
func rebuildGuarded(m map[string][]int) map[string][]int {
	out := make(map[string][]int, len(m))
	for k, v := range m {
		if len(v) > 0 {
			out[k] = append([]int(nil), v...)
		}
	}
	return out
}

// rebuildCall is NOT a keyed rebuild: the right-hand side calls a
// function, which may observe the iteration order.
func rebuildCall(m map[string]int) map[string]string {
	out := make(map[string]string, len(m))
	for k, v := range m { // want `range over map m has nondeterministic iteration order`
		out[k] = fmt.Sprint(v)
	}
	return out
}

// valueIndexed is NOT a keyed rebuild: indexing by the value can collide
// across keys, and which write lands last depends on iteration order.
func valueIndexed(m map[string]string) map[string]string {
	out := make(map[string]string, len(m))
	for k, v := range m { // want `range over map m has nondeterministic iteration order`
		out[v] = k
	}
	return out
}

// collectGuarded filters while collecting; the sort still fixes the order.
func collectGuarded(m map[string]int) []string {
	var keys []string
	for k, v := range m {
		if v > 0 {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys
}

// collectGuardedEffect is NOT recognized: the guard itself has effects.
func collectGuardedEffect(m map[string]int, seen func(string) bool) []string {
	var keys []string
	for k := range m { // want `range over map m has nondeterministic iteration order`
		if seen(k) {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys
}

func allowed(m map[string]int) {
	//simcheck:allow maporder testdata exercises the allowlist
	for k := range m {
		fmt.Println(k)
	}
}

// slices are not maps: never flagged.
func sliceRange(s []string) {
	for _, v := range s {
		fmt.Println(v)
	}
}
