package maporder_test

import (
	"testing"

	"mpicontend/internal/analysis/analysistest"
	"mpicontend/internal/analysis/maporder"
)

func TestGolden(t *testing.T) {
	analysistest.Run(t, maporder.Analyzer, "testdata/src/a",
		"mpicontend/internal/analysis/maporder/testdata/src/a")
}

// TestLaundering checks the cross-package pass: the map range lives in
// an exempt locks-layer package, the report lands at the call site in
// checked code.
func TestLaundering(t *testing.T) {
	analysistest.RunPkgs(t, maporder.Analyzer, []analysistest.Pkg{
		{Dir: "testdata/src/locks", ImportPath: "mpicontend/locks/stats"},
		{Dir: "testdata/src/b", ImportPath: "mpicontend/tdmaporder/b"},
	})
}

func TestScope(t *testing.T) {
	if maporder.Analyzer.Applies("mpicontend/locks") {
		t.Errorf("maporder must not apply to the real-threads lock library")
	}
	if !maporder.Analyzer.Applies("mpicontend/internal/trace") {
		t.Errorf("maporder must apply to reporting packages")
	}
}
