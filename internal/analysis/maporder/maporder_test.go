package maporder_test

import (
	"testing"

	"mpicontend/internal/analysis/analysistest"
	"mpicontend/internal/analysis/maporder"
)

func TestGolden(t *testing.T) {
	analysistest.Run(t, maporder.Analyzer, "testdata/src/a",
		"mpicontend/internal/analysis/maporder/testdata/src/a")
}

func TestScope(t *testing.T) {
	if maporder.Analyzer.Applies("mpicontend/locks") {
		t.Errorf("maporder must not apply to the real-threads lock library")
	}
	if !maporder.Analyzer.Applies("mpicontend/internal/trace") {
		t.Errorf("maporder must apply to reporting packages")
	}
}
