package telemetry

import (
	"fmt"
	"sort"
	"strings"
)

// ProfileSchema tags the profile JSON layout.
const ProfileSchema = "mpicontend/profile/v1"

// PlaceCount is the acquisition count of one (socket, core) slot — the
// generalization of trace.AcquisitionCounter keyed by hardware placement.
type PlaceCount struct {
	Socket       int   `json:"socket"`
	Core         int   `json:"core"`
	Acquisitions int64 `json:"acquisitions"`
}

// LockProfile is the per-lock contention report (§4.3): wait-time
// distribution, handoff latency, and monopolization run lengths.
type LockProfile struct {
	Name         string `json:"name"`
	Acquisitions int64  `json:"acquisitions"`
	HighAcq      int64  `json:"high_acq"`
	LowAcq       int64  `json:"low_acq"`
	// Uncontended counts acquisitions granted in zero simulated time.
	Uncontended int64 `json:"uncontended"`
	// UsefulAcq counts holds that advanced the progress engine (handled
	// at least one completion event) — the Fig. 6a useful/wasted split.
	UsefulAcq int64     `json:"useful_acq"`
	Wait      HistStats `json:"wait"`
	Hold      HistStats `json:"hold"`
	// Handoff is the release→grant latency, measured only when the next
	// holder was already waiting at release time (a true handoff; gaps
	// where the lock sat idle are not handoffs).
	Handoff HistStats `json:"handoff"`
	// Monopolization: longest streak of consecutive acquisitions by the
	// same thread / core / socket (§4.3's unfairness mechanism).
	LongestRunThread int64 `json:"longest_run_thread"`
	LongestRunCore   int64 `json:"longest_run_core"`
	LongestRunSocket int64 `json:"longest_run_socket"`
	// MaxThreadShare is the largest fraction of acquisitions taken by a
	// single thread (1/nthreads = perfectly fair).
	MaxThreadShare float64 `json:"max_thread_share"`
	// Places lists acquisitions by holder placement, sorted by
	// (socket, core).
	Places []PlaceCount `json:"places,omitempty"`
}

// ProgressProfile is the progress-engine efficiency report (Fig. 6a):
// how often polls found work, and how many low-priority (progress-loop)
// lock acquisitions were wasted.
type ProgressProfile struct {
	Polls         int64 `json:"polls"`
	UsefulPolls   int64 `json:"useful_polls"`
	EventsHandled int64 `json:"events_handled"`
	// UsefulLowAcq / WastedLowAcq split progress-loop (low-class) lock
	// holds by whether they handled a completion event.
	UsefulLowAcq int64 `json:"useful_low_acq"`
	WastedLowAcq int64 `json:"wasted_low_acq"`
}

// CriticalPath is the per-message critical-path breakdown: where the
// simulated time of the run went, normalized per payload message.
type CriticalPath struct {
	// Messages counts payload-bearing flights (Eager, RData, RMA data).
	Messages int64 `json:"messages"`
	// Totals in simulated ns.
	AppNs        int64 `json:"app_ns"`
	CallNs       int64 `json:"call_ns"`
	LockWaitNs   int64 `json:"lock_wait_ns"`
	HoldNs       int64 `json:"hold_ns"`
	InjectNs     int64 `json:"inject_ns"`
	WireNs       int64 `json:"wire_ns"`
	UnexpectedNs int64 `json:"unexpected_ns"`
	// Per-message averages of the same quantities.
	PerMessage CriticalPathPerMsg `json:"per_message"`
}

// CriticalPathPerMsg holds the per-message averages of CriticalPath.
type CriticalPathPerMsg struct {
	AppNs        float64 `json:"app_ns"`
	CallNs       float64 `json:"call_ns"`
	LockWaitNs   float64 `json:"lock_wait_ns"`
	HoldNs       float64 `json:"hold_ns"`
	InjectNs     float64 `json:"inject_ns"`
	WireNs       float64 `json:"wire_ns"`
	UnexpectedNs float64 `json:"unexpected_ns"`
}

// GaugeStats summarizes a gauge timeline.
type GaugeStats struct {
	Samples int64 `json:"samples"`
	Max     int64 `json:"max"`
	// TimeAvg is the time-weighted average over the sampled interval
	// (the §4.4 "average dangling requests" metric).
	TimeAvg float64 `json:"time_avg"`
}

// PartitionedProfile reports the partitioned-communication counters: how
// many Pready calls stayed on the lock-free path versus triggered the
// aggregated transfer. AggRatio is partitions per aggregate — (Lockfree +
// Trigger) / Trigger when every partition gets one Pready.
type PartitionedProfile struct {
	Lockfree int64   `json:"lockfree"`
	Trigger  int64   `json:"trigger"`
	AggRatio float64 `json:"agg_ratio"`
}

// Profile is the derived analysis of one recorded run.
type Profile struct {
	Schema          string             `json:"schema"`
	SimEndNs        int64              `json:"sim_end_ns"`
	Spans           int64              `json:"spans"`
	Locks           []LockProfile      `json:"locks"`
	Progress        ProgressProfile    `json:"progress"`
	CriticalPath    CriticalPath       `json:"critical_path"`
	Dangling        GaugeStats         `json:"dangling"`
	CompletionQueue GaugeStats         `json:"completion_queue"`
	UnexpectedQueue HistStats          `json:"unexpected_queue"`
	Partitioned     PartitionedProfile `json:"partitioned"`
}

// payloadKinds are the packet kinds whose flight counts as one message
// for the critical-path normalization.
var payloadKinds = map[string]bool{
	"Eager": true, "RData": true, "RMAPut": true, "RMAGet": true, "RMAAcc": true,
}

// lockState accumulates per-lock statistics during the span scan.
type lockState struct {
	wait, hold, handoff Hist
	acq                 [2]int64 // by class
	uncontended         int64
	useful              int64

	// waitStart maps thread → wait-span start (lookup only; never ranged).
	waitStart map[int32]int64

	lastEnd              int64
	lastThread           int32
	lastSock, lastCore   int16
	haveLast             bool
	runT, runC, runS     int64
	bestT, bestC, bestS  int64
	byThread             map[int32]int64
	byPlace              map[[2]int16]int64
}

// Profile derives the contention, progress and critical-path reports from
// the span stream. Safe on a nil recorder (returns an empty profile).
func (r *Recorder) Profile() *Profile {
	p := &Profile{Schema: ProfileSchema}
	if r == nil {
		return p
	}
	p.SimEndNs = r.maxTs
	p.Spans = int64(len(r.spans))

	locks := make([]*lockState, len(r.lockNames))
	for i := range locks {
		locks[i] = &lockState{
			waitStart: map[int32]int64{},
			byThread:  map[int32]int64{},
			byPlace:   map[[2]int16]int64{},
		}
	}
	// Per-thread aggregates for the app-time estimate.
	nthreads := len(r.threadNames)
	callNs := make([]int64, nthreads)
	runtimeNs := make([]int64, nthreads) // poll+wait+hold, for daemon threads

	for i := range r.spans {
		s := &r.spans[i]
		d := s.End - s.Start
		switch s.Kind {
		case SpanCall:
			p.CriticalPath.CallNs += d
			if int(s.Thread) < nthreads {
				callNs[s.Thread] += d
			}
		case SpanPoll:
			p.Progress.Polls++
			p.Progress.EventsHandled += s.Arg
			if s.Arg > 0 {
				p.Progress.UsefulPolls++
			}
			if int(s.Thread) < nthreads {
				runtimeNs[s.Thread] += d
			}
		case SpanWait:
			p.CriticalPath.LockWaitNs += d
			if int(s.Thread) < nthreads {
				runtimeNs[s.Thread] += d
			}
			if int(s.Lock) < len(locks) {
				ls := locks[s.Lock]
				ls.wait.Add(d)
				if d == 0 {
					ls.uncontended++
				}
				ls.waitStart[s.Thread] = s.Start
			}
		case SpanHold:
			p.CriticalPath.HoldNs += d
			if int(s.Thread) < nthreads {
				runtimeNs[s.Thread] += d
			}
			if s.Class == ClassLow {
				if s.Useful {
					p.Progress.UsefulLowAcq++
				} else {
					p.Progress.WastedLowAcq++
				}
			}
			if int(s.Lock) < len(locks) {
				locks[s.Lock].observeHold(s, d)
			}
		case SpanInject:
			p.CriticalPath.InjectNs += d
		case SpanFlight:
			p.CriticalPath.WireNs += d
			if payloadKinds[s.Name] {
				p.CriticalPath.Messages++
			}
		}
	}

	// App time: thread alive time minus time attributable to the runtime.
	// Threads with MPI call spans subtract call time (polls and lock spans
	// nest inside calls); pure runtime threads (async progress daemons)
	// subtract their poll/lock time directly.
	alive := r.aliveNs()
	for t := 0; t < nthreads; t++ {
		mpiNs := callNs[t]
		if mpiNs == 0 {
			mpiNs = runtimeNs[t]
		}
		if app := alive[t] - mpiNs; app > 0 {
			p.CriticalPath.AppNs += app
		}
	}
	p.CriticalPath.UnexpectedNs = r.unexpected.Sum()
	if m := p.CriticalPath.Messages; m > 0 {
		fm := float64(m)
		p.CriticalPath.PerMessage = CriticalPathPerMsg{
			AppNs:        float64(p.CriticalPath.AppNs) / fm,
			CallNs:       float64(p.CriticalPath.CallNs) / fm,
			LockWaitNs:   float64(p.CriticalPath.LockWaitNs) / fm,
			HoldNs:       float64(p.CriticalPath.HoldNs) / fm,
			InjectNs:     float64(p.CriticalPath.InjectNs) / fm,
			WireNs:       float64(p.CriticalPath.WireNs) / fm,
			UnexpectedNs: float64(p.CriticalPath.UnexpectedNs) / fm,
		}
	}

	for i, ls := range locks {
		p.Locks = append(p.Locks, ls.profile(r.lockName(int32(i))))
	}
	p.Dangling = r.danglingStats()
	p.CompletionQueue = r.gaugeStats(r.cqdepth)
	p.UnexpectedQueue = r.unexpected.Stats()
	p.Partitioned = PartitionedProfile{Lockfree: r.preadyFast, Trigger: r.preadyTrigger}
	if r.preadyTrigger > 0 {
		p.Partitioned.AggRatio = float64(r.preadyFast+r.preadyTrigger) / float64(r.preadyTrigger)
	}
	return p
}

// observeHold folds one hold span into the lock's statistics.
func (ls *lockState) observeHold(s *Span, d int64) {
	ls.hold.Add(d)
	ls.acq[s.Class&1]++
	if s.Useful {
		ls.useful++
	}
	ls.byThread[s.Thread]++
	ls.byPlace[[2]int16{s.Sock, s.Core}]++

	if ls.haveLast {
		// Handoff latency: release → next grant, only when the next
		// holder was already waiting at the release (otherwise the gap is
		// idle time, not arbitration).
		if ws, ok := ls.waitStart[s.Thread]; ok && ws <= ls.lastEnd && s.Start >= ls.lastEnd {
			ls.handoff.Add(s.Start - ls.lastEnd)
		}
		if s.Thread == ls.lastThread {
			ls.runT++
		} else {
			ls.runT = 1
		}
		if s.Sock == ls.lastSock && s.Core == ls.lastCore {
			ls.runC++
		} else {
			ls.runC = 1
		}
		if s.Sock == ls.lastSock {
			ls.runS++
		} else {
			ls.runS = 1
		}
	} else {
		ls.runT, ls.runC, ls.runS = 1, 1, 1
	}
	if ls.runT > ls.bestT {
		ls.bestT = ls.runT
	}
	if ls.runC > ls.bestC {
		ls.bestC = ls.runC
	}
	if ls.runS > ls.bestS {
		ls.bestS = ls.runS
	}
	ls.haveLast = true
	ls.lastEnd = s.End
	ls.lastThread = s.Thread
	ls.lastSock, ls.lastCore = s.Sock, s.Core
}

// profile renders the accumulated state as a LockProfile.
func (ls *lockState) profile(name string) LockProfile {
	lp := LockProfile{
		Name:             name,
		Acquisitions:     ls.acq[0] + ls.acq[1],
		HighAcq:          ls.acq[0],
		LowAcq:           ls.acq[1],
		Uncontended:      ls.uncontended,
		UsefulAcq:        ls.useful,
		Wait:             ls.wait.Stats(),
		Hold:             ls.hold.Stats(),
		Handoff:          ls.handoff.Stats(),
		LongestRunThread: ls.bestT,
		LongestRunCore:   ls.bestC,
		LongestRunSocket: ls.bestS,
	}
	if lp.Acquisitions > 0 {
		var threads []int32
		for t := range ls.byThread {
			threads = append(threads, t)
		}
		sort.Slice(threads, func(i, j int) bool { return threads[i] < threads[j] })
		var maxAcq int64
		for _, t := range threads {
			if ls.byThread[t] > maxAcq {
				maxAcq = ls.byThread[t]
			}
		}
		lp.MaxThreadShare = float64(maxAcq) / float64(lp.Acquisitions)

		var places [][2]int16
		for pl := range ls.byPlace {
			places = append(places, pl)
		}
		sort.Slice(places, func(i, j int) bool {
			if places[i][0] != places[j][0] {
				return places[i][0] < places[j][0]
			}
			return places[i][1] < places[j][1]
		})
		for _, pl := range places {
			lp.Places = append(lp.Places, PlaceCount{
				Socket: int(pl[0]), Core: int(pl[1]),
				Acquisitions: ls.byPlace[pl],
			})
		}
	}
	return lp
}

// aliveNs computes each thread's first-run → done (or sim end) interval
// from the sched records.
func (r *Recorder) aliveNs() []int64 {
	first := make([]int64, len(r.threadNames))
	last := make([]int64, len(r.threadNames))
	seen := make([]bool, len(r.threadNames))
	done := make([]bool, len(r.threadNames))
	for _, rec := range r.sched {
		t := int(rec.Thread)
		if t >= len(first) {
			continue
		}
		if !seen[t] {
			seen[t] = true
			first[t] = rec.At
		}
		if rec.State == stateDone && !done[t] {
			done[t] = true
			last[t] = rec.At
		}
	}
	out := make([]int64, len(first))
	for t := range first {
		if !seen[t] {
			continue
		}
		end := r.maxTs
		if done[t] {
			end = last[t]
		}
		if end > first[t] {
			out[t] = end - first[t]
		}
	}
	return out
}

// danglingStats summarizes the dangling-request gauge timeline.
func (r *Recorder) danglingStats() GaugeStats {
	return r.gaugeStats(r.dangling)
}

// gaugeStats summarizes one gauge timeline against the recorded horizon.
func (r *Recorder) gaugeStats(samples []gaugeSample) GaugeStats {
	g := GaugeStats{Samples: int64(len(samples))}
	if len(samples) == 0 {
		return g
	}
	var weighted float64
	for i, s := range samples {
		if s.Value > g.Max {
			g.Max = s.Value
		}
		end := r.maxTs
		if i+1 < len(samples) {
			end = samples[i+1].At
		}
		weighted += float64(s.Value) * float64(end-s.At)
	}
	if span := r.maxTs - samples[0].At; span > 0 {
		g.TimeAvg = weighted / float64(span)
	} else {
		g.TimeAvg = float64(samples[len(samples)-1].Value)
	}
	return g
}

// Text renders the profile as a compact deterministic report for CLI
// output.
func (p *Profile) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "telemetry profile (sim end %d ns, %d spans)\n", p.SimEndNs, p.Spans)
	for _, l := range p.Locks {
		fmt.Fprintf(&b, "lock %-12s %d acq (high %d, low %d; uncontended %d, useful %d)\n",
			l.Name, l.Acquisitions, l.HighAcq, l.LowAcq, l.Uncontended, l.UsefulAcq)
		if l.Acquisitions == 0 {
			continue
		}
		fmt.Fprintf(&b, "  wait    %s\n", histLine(l.Wait))
		fmt.Fprintf(&b, "  hold    %s\n", histLine(l.Hold))
		fmt.Fprintf(&b, "  handoff %s\n", histLine(l.Handoff))
		fmt.Fprintf(&b, "  monopolization: run thread=%d core=%d socket=%d; max thread share %.1f%%\n",
			l.LongestRunThread, l.LongestRunCore, l.LongestRunSocket, 100*l.MaxThreadShare)
		for _, pc := range l.Places {
			fmt.Fprintf(&b, "    s%d.c%d %d\n", pc.Socket, pc.Core, pc.Acquisitions)
		}
	}
	pr := p.Progress
	fmt.Fprintf(&b, "progress: %d polls (%d useful), %d events; low-class holds useful %d / wasted %d\n",
		pr.Polls, pr.UsefulPolls, pr.EventsHandled, pr.UsefulLowAcq, pr.WastedLowAcq)
	cp := p.CriticalPath
	fmt.Fprintf(&b, "critical path: %d messages; per msg app %.0f, call %.0f, lock wait %.0f, hold %.0f, inject %.0f, wire %.0f, unexpected %.0f ns\n",
		cp.Messages, cp.PerMessage.AppNs, cp.PerMessage.CallNs, cp.PerMessage.LockWaitNs,
		cp.PerMessage.HoldNs, cp.PerMessage.InjectNs, cp.PerMessage.WireNs, cp.PerMessage.UnexpectedNs)
	fmt.Fprintf(&b, "dangling: avg %.2f, max %d (%d samples)\n",
		p.Dangling.TimeAvg, p.Dangling.Max, p.Dangling.Samples)
	if p.CompletionQueue.Samples > 0 {
		// Only continuation-mode runs sample the gauge; keeping the line
		// out otherwise preserves pre-existing report output.
		fmt.Fprintf(&b, "completion queue: avg depth %.2f, max %d (%d samples)\n",
			p.CompletionQueue.TimeAvg, p.CompletionQueue.Max, p.CompletionQueue.Samples)
	}
	if p.Partitioned.Lockfree+p.Partitioned.Trigger > 0 {
		// Only partitioned runs bump the counters; keeping the line out
		// otherwise preserves pre-existing report output.
		fmt.Fprintf(&b, "partitioned: pready.lockfree=%d pready.trigger=%d aggregation ratio %.1f partitions/transfer\n",
			p.Partitioned.Lockfree, p.Partitioned.Trigger, p.Partitioned.AggRatio)
	}
	fmt.Fprintf(&b, "unexpected queue: %s\n", histLine(p.UnexpectedQueue))
	return b.String()
}

// histLine renders a HistStats one-liner.
func histLine(h HistStats) string {
	if h.Count == 0 {
		return "(no samples)"
	}
	return fmt.Sprintf("n=%-7d mean=%.0fns p50<=%dns p90<=%dns p99<=%dns max=%dns",
		h.Count, h.MeanNs, h.P50Ns, h.P90Ns, h.P99Ns, h.MaxNs)
}
