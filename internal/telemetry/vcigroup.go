package telemetry

// Per-VCI contention grouping: the sharded runtime names each shard's
// critical-section lock "cs[r<rank>.v<shard>]", so a profile of a
// multi-VCI run carries one LockProfile row per shard. GroupVCILocks
// folds those rows back into per-family aggregates — one row per rank's
// shard family — so figures can compare "all of rank 0's shard sections"
// against the rank's single shared-NIC injection lock without hardcoding
// the shard count.

import (
	"sort"
	"strings"
)

// LockGroup is the aggregate of one lock family in a profile: either the
// per-VCI shards of one rank (name with the shard index wildcarded, e.g.
// "cs[r0.v*]") or a single unsharded lock (name unchanged).
type LockGroup struct {
	Name string
	// Members counts the lock rows folded into the group (1 for an
	// unsharded lock).
	Members int
	// Acquisitions, HighAcq, LowAcq, Uncontended and UsefulAcq sum the
	// members' counters.
	Acquisitions int64
	HighAcq      int64
	LowAcq       int64
	Uncontended  int64
	UsefulAcq    int64
	// WaitNs is the total simulated time threads spent waiting on the
	// family (sum over members of mean wait x wait count).
	WaitNs float64
	// MaxWaitNs is the worst single wait across the family.
	MaxWaitNs int64
}

// vciFamily returns the family name of a lock: "cs[r0.v3]" folds to
// "cs[r0.v*]"; any other shape is its own family.
func vciFamily(name string) string {
	i := strings.LastIndex(name, ".v")
	if i < 0 || !strings.HasSuffix(name, "]") {
		return name
	}
	digits := name[i+2 : len(name)-1]
	if digits == "" {
		return name
	}
	for _, c := range digits {
		if c < '0' || c > '9' {
			return name
		}
	}
	return name[:i+2] + "*]"
}

// GroupVCILocks folds a profile's lock rows into per-family groups,
// sorted by family name. Safe on a nil profile.
func GroupVCILocks(p *Profile) []LockGroup {
	if p == nil {
		return nil
	}
	byName := map[string]*LockGroup{}
	var names []string
	for i := range p.Locks {
		lp := &p.Locks[i]
		fam := vciFamily(lp.Name)
		g := byName[fam]
		if g == nil {
			g = &LockGroup{Name: fam}
			byName[fam] = g
			names = append(names, fam)
		}
		g.Members++
		g.Acquisitions += lp.Acquisitions
		g.HighAcq += lp.HighAcq
		g.LowAcq += lp.LowAcq
		g.Uncontended += lp.Uncontended
		g.UsefulAcq += lp.UsefulAcq
		g.WaitNs += lp.Wait.MeanNs * float64(lp.Wait.Count)
		if lp.Wait.MaxNs > g.MaxWaitNs {
			g.MaxWaitNs = lp.Wait.MaxNs
		}
	}
	sort.Strings(names)
	out := make([]LockGroup, len(names))
	for i, n := range names {
		out[i] = *byName[n]
	}
	return out
}
