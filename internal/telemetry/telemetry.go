// Package telemetry is the simulator's deterministic observability plane.
//
// A Recorder collects spans (MPI call main paths, progress-loop polls,
// lock wait→hold intervals, fabric injection and flight), gauge timelines
// (dangling requests, §4.4) and log-bucketed sim-time histograms
// (unexpected-queue residency) keyed entirely off the virtual clock. From
// that one span stream it derives the paper's analyses — per-lock
// contention profiles with wait-time distributions, handoff latency and
// monopolization run lengths (§4.3), a progress-engine efficiency report
// (useful vs. wasted acquisitions, Fig. 6a), and a per-message
// critical-path breakdown — and exports them as Chrome
// trace_event/Perfetto JSON and a flat JSON results schema.
//
// Everything is deterministic: no wall time, no map iteration escaping
// into output order, so two runs with the same seed produce byte-identical
// traces and profiles.
//
// The disabled path is free by construction: every recording method is a
// nil-receiver no-op, so hook sites compile down to a pointer nil check.
//
// telemetry is part of the deterministic core (docs/ARCHITECTURE.md).
package telemetry

// SpanKind classifies a recorded interval.
type SpanKind uint8

// Span kinds, in the order tracks render them.
const (
	// SpanCall is an MPI call's main path on an application thread.
	SpanCall SpanKind = iota
	// SpanPoll is one progress-engine poll (cq drain attempt).
	SpanPoll
	// SpanWait is the interval between requesting a lock and being
	// granted it.
	SpanWait
	// SpanHold is a lock hold: grant to release.
	SpanHold
	// SpanInject is the NIC injection interval of one packet.
	SpanInject
	// SpanFlight is a packet's wire flight: injection end to delivery.
	SpanFlight
)

// String names the span kind.
func (k SpanKind) String() string {
	switch k {
	case SpanCall:
		return "call"
	case SpanPoll:
		return "poll"
	case SpanWait:
		return "wait"
	case SpanHold:
		return "hold"
	case SpanInject:
		return "inject"
	case SpanFlight:
		return "flight"
	default:
		return "span(?)"
	}
}

// Scheduling classes of lock spans, mirroring simlock.Class without
// importing it (telemetry sits below every simulation package).
const (
	// ClassHigh marks main-path acquisitions.
	ClassHigh uint8 = iota
	// ClassLow marks progress-loop acquisitions.
	ClassLow
)

// Span is one recorded interval on a track. Fields beyond Kind/Start/End
// are populated per kind: lock spans carry Lock/Class (holds also
// Sock/Core/Useful), fabric spans carry Lock as the destination endpoint
// and Arg as the byte count, polls carry Arg as the handled-event count.
type Span struct {
	Kind  SpanKind
	Class uint8
	// Useful marks a hold during which the progress engine handled at
	// least one completion event (the Fig. 6a useful/wasted split).
	Useful bool
	// Thread is the simthread id (call/poll/wait/hold) or the source
	// endpoint id (inject/flight).
	Thread int32
	// Lock is the lock id (wait/hold) or destination endpoint (flight);
	// -1 when not applicable.
	Lock       int32
	Sock, Core int16
	Start, End int64
	// Arg is the events handled (poll) or payload bytes (inject/flight).
	Arg int64
	// Name labels call spans (the MPI function) and fabric spans (the
	// packet kind). Always a static string, so recording does not allocate
	// beyond the span slot itself.
	Name string
}

// stateRec is one thread scheduling-state transition.
type stateRec struct {
	Thread int32
	State  uint8 // one of stateRun/stateBlocked/stateDone
	At     int64
}

// Merged scheduler states for the sched track: running and sleeping both
// consume the simulated core ("run"); parked threads are blocked on an
// external event.
const (
	stateRun uint8 = iota
	stateBlocked
	stateDone
	stateNone // sentinel: no state recorded yet
)

// gaugeSample is one point of a gauge timeline.
type gaugeSample struct {
	At    int64
	Value int64
}

// Recorder collects telemetry from a single simulated world. The zero
// value is ready to use; a nil *Recorder is a valid "disabled" recorder
// whose methods all no-op.
//
// Recorder is not internally synchronized — like everything in the
// simulator it relies on the engine's one-simthread-at-a-time execution.
type Recorder struct {
	spans []Span

	threadNames []string // indexed by simthread id; "" = unregistered
	lockNames   []string // indexed by lock id
	nicCount    int      // endpoints observed (ids are dense from 0)

	sched     []stateRec
	lastState []uint8 // per-thread last recorded state, for dedupe

	dangling   []gaugeSample
	cqdepth    []gaugeSample
	unexpected Hist

	// Partitioned-communication counters (plain counts, no spans: the
	// Pready fast path must stay allocation-free).
	preadyFast    int64
	preadyTrigger int64

	maxTs int64
}

// New returns an enabled recorder.
func New() *Recorder { return &Recorder{} }

// Enabled reports whether the recorder is collecting (non-nil).
func (r *Recorder) Enabled() bool { return r != nil }

// touch extends the recorded horizon.
func (r *Recorder) touch(ts int64) {
	if ts > r.maxTs {
		r.maxTs = ts
	}
}

// RegisterThread names a simthread track. Threads must be registered
// before their first span so exports can label tracks; spans from
// unregistered ids still record (labelled "thread<N>").
func (r *Recorder) RegisterThread(id int, name string) {
	if r == nil {
		return
	}
	for len(r.threadNames) <= id {
		r.threadNames = append(r.threadNames, "")
		r.lastState = append(r.lastState, stateNone)
	}
	r.threadNames[id] = name
}

// RegisterLock names a lock track and returns its id.
func (r *Recorder) RegisterLock(name string) int {
	if r == nil {
		return -1
	}
	r.lockNames = append(r.lockNames, name)
	return len(r.lockNames) - 1
}

// PreadyFast counts one lock-free (non-triggering) Pready/PreadyRange
// call. Counter-only and allocation-free: it sits on the partitioned fast
// path, which takes no lock and records no span.
func (r *Recorder) PreadyFast() {
	if r == nil {
		return
	}
	r.preadyFast++
}

// PreadyTrigger counts one readiness-completing Pready — the call that
// entered the shard section and injected the epoch's aggregate.
func (r *Recorder) PreadyTrigger() {
	if r == nil {
		return
	}
	r.preadyTrigger++
}

// ensureNIC widens the NIC track range to include id.
func (r *Recorder) ensureNIC(id int) {
	if id >= r.nicCount {
		r.nicCount = id + 1
	}
}

// Call records an MPI call span (Isend, Irecv, Wait, ...).
func (r *Recorder) Call(thread int, name string, start, end int64) {
	if r == nil {
		return
	}
	r.spans = append(r.spans, Span{Kind: SpanCall, Thread: int32(thread),
		Lock: -1, Name: name, Start: start, End: end})
	r.touch(end)
}

// Poll records one progress-engine poll that handled the given number of
// completion events.
func (r *Recorder) Poll(thread int, start, end int64, handled int) {
	if r == nil {
		return
	}
	//simcheck:allow hotalloc amortized trace-buffer growth; the recorder is opt-in
	r.spans = append(r.spans, Span{Kind: SpanPoll, Thread: int32(thread),
		Lock: -1, Arg: int64(handled), Start: start, End: end})
	r.touch(end)
}

// LockWait records the request→grant interval of one acquisition.
func (r *Recorder) LockWait(lock, thread int, class uint8, start, end int64) {
	if r == nil {
		return
	}
	r.spans = append(r.spans, Span{Kind: SpanWait, Thread: int32(thread),
		Lock: int32(lock), Class: class, Start: start, End: end})
	r.touch(end)
}

// LockHold records a grant→release interval; useful marks holds that
// advanced the progress engine, (sock, core) is the holder's placement.
func (r *Recorder) LockHold(lock, thread int, class uint8, useful bool, sock, core int, start, end int64) {
	if r == nil {
		return
	}
	r.spans = append(r.spans, Span{Kind: SpanHold, Thread: int32(thread),
		Lock: int32(lock), Class: class, Useful: useful,
		Sock: int16(sock), Core: int16(core), Start: start, End: end})
	r.touch(end)
}

// Inject records a packet's NIC injection interval on the source endpoint.
func (r *Recorder) Inject(nic int, kind string, bytes, start, end int64) {
	if r == nil {
		return
	}
	r.ensureNIC(nic)
	//simcheck:allow hotalloc amortized trace-buffer growth; the recorder is opt-in
	r.spans = append(r.spans, Span{Kind: SpanInject, Thread: int32(nic),
		Lock: -1, Name: kind, Arg: bytes, Start: start, End: end})
	r.touch(end)
}

// Flight records a packet's wire flight from injection end to delivery.
func (r *Recorder) Flight(src, dst int, kind string, bytes, start, end int64) {
	if r == nil {
		return
	}
	r.ensureNIC(src)
	r.ensureNIC(dst)
	//simcheck:allow hotalloc amortized trace-buffer growth; the recorder is opt-in
	r.spans = append(r.spans, Span{Kind: SpanFlight, Thread: int32(src),
		Lock: int32(dst), Name: kind, Arg: bytes, Start: start, End: end})
	r.touch(end)
}

// Dangling samples the dangling-request gauge (completed-but-not-freed
// requests, §4.4) at the given time.
func (r *Recorder) Dangling(at, value int64) {
	if r == nil {
		return
	}
	// Collapse same-instant samples (batched completions) to the last.
	if n := len(r.dangling); n > 0 && r.dangling[n-1].At == at {
		r.dangling[n-1].Value = value
		return
	}
	//simcheck:allow hotalloc amortized gauge-sample growth; the recorder is opt-in
	r.dangling = append(r.dangling, gaugeSample{At: at, Value: value})
	r.touch(at)
}

// CQDepth samples the completion-queue depth gauge (delivered-but-not-
// drained completions under continuation-mode progress) at the given
// time — the `cq.depth` metric of the progress experiment.
func (r *Recorder) CQDepth(at, value int64) {
	if r == nil {
		return
	}
	// Collapse same-instant samples (batched deliveries) to the last.
	if n := len(r.cqdepth); n > 0 && r.cqdepth[n-1].At == at {
		r.cqdepth[n-1].Value = value
		return
	}
	//simcheck:allow hotalloc amortized gauge-sample growth; the recorder is opt-in
	r.cqdepth = append(r.cqdepth, gaugeSample{At: at, Value: value})
	r.touch(at)
}

// Unexpected records the residency of one message in the unexpected queue
// (arrival to match).
func (r *Recorder) Unexpected(residencyNs int64) {
	if r == nil {
		return
	}
	r.unexpected.Add(residencyNs)
}

// ThreadState records a scheduler-state transition reported by the engine.
// Engine states collapse onto the sched track's run/blocked/done alphabet;
// consecutive identical states dedupe.
func (r *Recorder) ThreadState(thread int, at int64, state string) {
	if r == nil {
		return
	}
	var s uint8
	switch state {
	case "running", "sleeping":
		s = stateRun
	case "parked":
		s = stateBlocked
	case "done":
		s = stateDone
	default:
		return // "new" and unknown states don't render
	}
	for len(r.lastState) <= thread {
		r.lastState = append(r.lastState, stateNone)
		r.threadNames = append(r.threadNames, "")
	}
	if r.lastState[thread] == s {
		return
	}
	r.lastState[thread] = s
	r.sched = append(r.sched, stateRec{Thread: int32(thread), State: s, At: at})
	r.touch(at)
}

// Spans returns the recorded spans in record order (callers must not
// mutate).
func (r *Recorder) Spans() []Span {
	if r == nil {
		return nil
	}
	return r.spans
}

// SimEnd returns the largest timestamp observed.
func (r *Recorder) SimEnd() int64 {
	if r == nil {
		return 0
	}
	return r.maxTs
}

// threadName labels a simthread track.
func (r *Recorder) threadName(id int32) string {
	if int(id) < len(r.threadNames) && r.threadNames[id] != "" {
		return r.threadNames[id]
	}
	return "thread" + itoa(int64(id))
}

// lockName labels a lock track.
func (r *Recorder) lockName(id int32) string {
	if id >= 0 && int(id) < len(r.lockNames) {
		return r.lockNames[id]
	}
	return "lock" + itoa(int64(id))
}

// itoa is a tiny strconv.FormatInt(v, 10) to keep hot paths free of
// imports here; only export paths call it.
func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
