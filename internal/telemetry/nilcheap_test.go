package telemetry

import "testing"

// TestNilRecorderHooksAreCheap pins the package contract the hot path
// depends on: every recording hook is a nil-receiver no-op that neither
// panics nor allocates. The simulator's fast path calls these behind
// plain nil checks, so any allocation (e.g. an interface boxing or a
// defensive copy added before the nil test) would silently tax every
// event of every figure regeneration.
func TestNilRecorderHooksAreCheap(t *testing.T) {
	var r *Recorder
	if r.Enabled() {
		t.Fatal("nil recorder reports Enabled")
	}
	hooks := map[string]func(){
		"RegisterThread": func() { r.RegisterThread(1, "t") },
		"Call":           func() { r.Call(1, "Isend", 0, 10) },
		"Poll":           func() { r.Poll(1, 0, 10, 2) },
		"LockWait":       func() { r.LockWait(0, 1, 0, 0, 10) },
		"LockHold":       func() { r.LockHold(0, 1, 0, true, 0, 0, 0, 10) },
		"Inject":         func() { r.Inject(0, "Eager", 64, 0, 10) },
		"Flight":         func() { r.Flight(0, 1, "Eager", 64, 0, 10) },
		"Dangling":       func() { r.Dangling(0, 3) },
		"Unexpected":     func() { r.Unexpected(100) },
		"ThreadState":    func() { r.ThreadState(1, 0, "running") },
	}
	for name, fn := range hooks {
		if allocs := testing.AllocsPerRun(100, fn); allocs != 0 {
			t.Errorf("nil Recorder.%s allocates %.0f times per call; want 0", name, allocs)
		}
	}
	// RegisterLock returns an id; exercise it separately for the panic
	// and allocation guarantees.
	if allocs := testing.AllocsPerRun(100, func() { _ = r.RegisterLock("cs") }); allocs != 0 {
		t.Errorf("nil Recorder.RegisterLock allocates; want 0")
	}
}
