package telemetry

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
)

// Process (track-group) ids of the exported trace. Perfetto renders one
// group per pid; tids within a group are the individual tracks.
const (
	pidThreads = 1 // one track per simthread: calls, polls, lock waits
	pidLocks   = 2 // one track per lock: holds, labelled by holder
	pidFabric  = 3 // one track per NIC: injection + async flight spans
	pidSched   = 4 // one track per simthread: run/blocked states
)

// traceEvent is one Chrome trace_event object. Field order is fixed by
// the struct, and args maps marshal with sorted keys, so the export is
// byte-deterministic.
type traceEvent struct {
	Name string      `json:"name,omitempty"`
	Ph   string      `json:"ph"`
	Cat  string      `json:"cat,omitempty"`
	Ts   json.Number `json:"ts"`
	Dur  json.Number `json:"dur,omitempty"`
	Pid  int         `json:"pid"`
	Tid  int         `json:"tid"`
	ID   string      `json:"id,omitempty"`
	Args interface{} `json:"args,omitempty"`
}

// traceFile is the top-level Chrome trace_event JSON object.
type traceFile struct {
	TraceEvents     []traceEvent      `json:"traceEvents"`
	DisplayTimeUnit string            `json:"displayTimeUnit"`
	OtherData       map[string]string `json:"otherData"`
}

// usec renders a nanosecond timestamp as fractional microseconds (the
// trace_event unit) with fixed precision, so output is deterministic.
func usec(ns int64) json.Number {
	return json.Number(strconv.FormatFloat(float64(ns)/1e3, 'f', 3, 64))
}

// meta builds a metadata (ph "M") event.
func meta(name string, pid, tid int, value string) traceEvent {
	return traceEvent{Name: name, Ph: "M", Ts: "0", Pid: pid, Tid: tid,
		Args: map[string]string{"name": value}}
}

// Perfetto exports the recording as Chrome trace_event JSON, loadable in
// ui.perfetto.dev: simthread tracks (MPI calls, progress polls, lock
// waits), lock tracks (holds labelled by holder thread), NIC tracks
// (injections plus async flight spans), scheduler-state tracks, and the
// dangling-request counter. Safe on a nil recorder (empty trace).
func (r *Recorder) Perfetto() []byte {
	tf := traceFile{
		DisplayTimeUnit: "ns",
		OtherData:       map[string]string{"schema": "mpicontend/trace/v1"},
	}
	if r != nil {
		tf.TraceEvents = r.events()
	}
	if tf.TraceEvents == nil {
		tf.TraceEvents = []traceEvent{}
	}
	out, err := json.Marshal(tf)
	if err != nil {
		// Only unmarshalable values can fail here; the structs are plain.
		panic(fmt.Sprintf("telemetry: perfetto marshal: %v", err))
	}
	return out
}

// events builds the full deterministic event list.
func (r *Recorder) events() []traceEvent {
	evs := make([]traceEvent, 0, 2*len(r.spans)+len(r.sched)+len(r.dangling)+16)

	// Track metadata: processes, then per-track names in id order.
	evs = append(evs,
		meta("process_name", pidThreads, 0, "simthreads"),
		meta("process_name", pidLocks, 0, "locks"),
		meta("process_name", pidFabric, 0, "fabric"),
		meta("process_name", pidSched, 0, "sched"),
	)
	for id := range r.threadNames {
		name := r.threadName(int32(id))
		evs = append(evs,
			meta("thread_name", pidThreads, id, name),
			meta("thread_name", pidSched, id, name),
		)
	}
	for id := range r.lockNames {
		evs = append(evs, meta("thread_name", pidLocks, id, r.lockNames[id]))
	}
	for id := 0; id < r.nicCount; id++ {
		evs = append(evs, meta("thread_name", pidFabric, id, "nic"+itoa(int64(id))))
	}

	flightID := 0
	for i := range r.spans {
		s := &r.spans[i]
		switch s.Kind {
		case SpanCall:
			evs = append(evs, traceEvent{Name: s.Name, Ph: "X", Cat: "mpi",
				Ts: usec(s.Start), Dur: usec(s.End - s.Start),
				Pid: pidThreads, Tid: int(s.Thread)})
		case SpanPoll:
			evs = append(evs, traceEvent{Name: "poll", Ph: "X", Cat: "progress",
				Ts: usec(s.Start), Dur: usec(s.End - s.Start),
				Pid: pidThreads, Tid: int(s.Thread),
				Args: map[string]int64{"handled": s.Arg}})
		case SpanWait:
			evs = append(evs, traceEvent{Name: "wait:" + r.lockName(s.Lock),
				Ph: "X", Cat: "lock",
				Ts: usec(s.Start), Dur: usec(s.End - s.Start),
				Pid: pidThreads, Tid: int(s.Thread),
				Args: map[string]string{"class": className(s.Class)}})
		case SpanHold:
			evs = append(evs, traceEvent{Name: r.threadName(s.Thread),
				Ph: "X", Cat: "lock",
				Ts: usec(s.Start), Dur: usec(s.End - s.Start),
				Pid: pidLocks, Tid: int(s.Lock),
				Args: map[string]string{
					"class":  className(s.Class),
					"useful": boolStr(s.Useful),
					"place":  "s" + itoa(int64(s.Sock)) + ".c" + itoa(int64(s.Core)),
				}})
		case SpanInject:
			evs = append(evs, traceEvent{Name: s.Name, Ph: "X", Cat: "nic",
				Ts: usec(s.Start), Dur: usec(s.End - s.Start),
				Pid: pidFabric, Tid: int(s.Thread),
				Args: map[string]int64{"bytes": s.Arg}})
		case SpanFlight:
			// Flights from one NIC overlap in time, so they export as
			// async begin/end pairs with per-span ids.
			id := "f" + itoa(int64(flightID))
			flightID++
			evs = append(evs,
				traceEvent{Name: s.Name, Ph: "b", Cat: "flight",
					Ts: usec(s.Start), Pid: pidFabric, Tid: int(s.Thread), ID: id,
					Args: map[string]int64{"bytes": s.Arg, "dst": int64(s.Lock)}},
				traceEvent{Name: s.Name, Ph: "e", Cat: "flight",
					Ts: usec(s.End), Pid: pidFabric, Tid: int(s.Thread), ID: id})
		}
	}

	// Scheduler-state spans: per-thread transition sequences close each
	// state at the next transition (or sim end).
	evs = append(evs, r.schedEvents()...)

	// Dangling-request counter.
	for _, g := range r.dangling {
		evs = append(evs, traceEvent{Name: "dangling", Ph: "C",
			Ts: usec(g.At), Pid: pidThreads, Tid: 0,
			Args: map[string]int64{"requests": g.Value}})
	}
	return evs
}

// schedEvents converts the global state-transition log into per-thread
// state spans on the sched track.
func (r *Recorder) schedEvents() []traceEvent {
	perThread := make([][]stateRec, len(r.threadNames))
	for _, rec := range r.sched {
		if int(rec.Thread) < len(perThread) {
			perThread[rec.Thread] = append(perThread[rec.Thread], rec)
		}
	}
	var evs []traceEvent
	for tid, recs := range perThread {
		for i, rec := range recs {
			if rec.State == stateDone {
				continue
			}
			end := r.maxTs
			if i+1 < len(recs) {
				end = recs[i+1].At
			}
			if end <= rec.At {
				continue
			}
			evs = append(evs, traceEvent{Name: stateName(rec.State), Ph: "X",
				Cat: "sched", Ts: usec(rec.At), Dur: usec(end - rec.At),
				Pid: pidSched, Tid: tid})
		}
	}
	return evs
}

// className names a lock scheduling class.
func className(c uint8) string {
	if c == ClassLow {
		return "low"
	}
	return "high"
}

// stateName names a merged scheduler state.
func stateName(s uint8) string {
	switch s {
	case stateRun:
		return "run"
	case stateBlocked:
		return "blocked"
	case stateDone:
		return "done"
	default:
		return "?"
	}
}

// boolStr renders a bool without fmt.
func boolStr(b bool) string {
	if b {
		return "true"
	}
	return "false"
}

// ValidateTrace checks that data parses as a Chrome trace_event file with
// well-formed events: every event has a phase and non-negative pid/tid,
// complete events carry a duration, and async begin/end pairs balance.
func ValidateTrace(data []byte) error {
	var tf struct {
		TraceEvents []struct {
			Ph  string      `json:"ph"`
			Ts  json.Number `json:"ts"`
			Dur json.Number `json:"dur"`
			Pid int         `json:"pid"`
			Tid int         `json:"tid"`
			ID  string      `json:"id"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &tf); err != nil {
		return fmt.Errorf("telemetry: trace: %w", err)
	}
	if len(tf.TraceEvents) == 0 {
		return fmt.Errorf("telemetry: trace: no events")
	}
	open := map[string]int{}
	for i, ev := range tf.TraceEvents {
		switch ev.Ph {
		case "X", "M", "C", "b", "e":
		default:
			return fmt.Errorf("telemetry: trace: event %d has unknown phase %q", i, ev.Ph)
		}
		if ev.Pid <= 0 || ev.Tid < 0 {
			return fmt.Errorf("telemetry: trace: event %d has bad track %d/%d", i, ev.Pid, ev.Tid)
		}
		if _, err := ev.Ts.Float64(); err != nil {
			return fmt.Errorf("telemetry: trace: event %d has bad ts: %w", i, err)
		}
		if ev.Ph == "X" {
			if d, err := ev.Dur.Float64(); err != nil || d < 0 {
				return fmt.Errorf("telemetry: trace: complete event %d has bad dur %q", i, ev.Dur)
			}
		}
		if ev.Ph == "b" {
			open[ev.ID]++
		}
		if ev.Ph == "e" {
			open[ev.ID]--
		}
	}
	var ids []string
	for id := range open {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		if open[id] != 0 {
			return fmt.Errorf("telemetry: trace: unbalanced async id %q", id)
		}
	}
	return nil
}

// ValidateProfile checks that data parses as a Profile with the current
// schema and internally consistent histograms.
func ValidateProfile(data []byte) error {
	var p Profile
	if err := json.Unmarshal(data, &p); err != nil {
		return fmt.Errorf("telemetry: profile: %w", err)
	}
	if p.Schema != ProfileSchema {
		return fmt.Errorf("telemetry: profile: schema %q, want %q", p.Schema, ProfileSchema)
	}
	check := func(name string, h HistStats) error {
		var n int64
		for _, b := range h.Buckets {
			n += b.Count
		}
		if n != h.Count {
			return fmt.Errorf("telemetry: profile: %s histogram buckets sum %d != count %d", name, n, h.Count)
		}
		return nil
	}
	for _, l := range p.Locks {
		if l.Name == "" {
			return fmt.Errorf("telemetry: profile: unnamed lock")
		}
		if l.HighAcq+l.LowAcq != l.Acquisitions {
			return fmt.Errorf("telemetry: profile: lock %s class split %d+%d != %d",
				l.Name, l.HighAcq, l.LowAcq, l.Acquisitions)
		}
		for _, h := range []struct {
			n string
			s HistStats
		}{{"wait", l.Wait}, {"hold", l.Hold}, {"handoff", l.Handoff}} {
			if err := check(l.Name+"/"+h.n, h.s); err != nil {
				return err
			}
		}
	}
	return check("unexpected_queue", p.UnexpectedQueue)
}

// MarshalProfile renders the profile as indented deterministic JSON.
func (p *Profile) Marshal() ([]byte, error) {
	return json.MarshalIndent(p, "", "  ")
}
