package telemetry

import "math/bits"

// histBuckets is the bucket count of the log-2 histograms: bucket i holds
// durations whose bit length is i, i.e. [2^(i-1), 2^i); bucket 0 holds
// exact zeros. 64 buckets cover every int64 duration.
const histBuckets = 64

// Hist is a log-2-bucketed histogram of simulated durations (ns). The
// zero value is an empty histogram.
type Hist struct {
	count   int64
	sum     int64
	max     int64
	buckets [histBuckets]int64
}

// bucketOf maps a duration to its bucket index.
func bucketOf(d int64) int {
	if d <= 0 {
		return 0
	}
	return bits.Len64(uint64(d))
}

// bucketUpper is the inclusive upper bound of bucket i in nanoseconds.
func bucketUpper(i int) int64 {
	if i <= 0 {
		return 0
	}
	if i >= 63 {
		return int64(1)<<62 - 1 + int64(1)<<62 // MaxInt64
	}
	return int64(1)<<uint(i) - 1
}

// Add records one duration. Negative durations clamp to zero.
func (h *Hist) Add(d int64) {
	if d < 0 {
		d = 0
	}
	h.count++
	h.sum += d
	if d > h.max {
		h.max = d
	}
	h.buckets[bucketOf(d)]++
}

// Count returns the number of samples.
func (h *Hist) Count() int64 { return h.count }

// Sum returns the summed duration.
func (h *Hist) Sum() int64 { return h.sum }

// Max returns the largest sample.
func (h *Hist) Max() int64 { return h.max }

// Mean returns the average sample (0 when empty).
func (h *Hist) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Quantile returns an upper bound for the q-quantile (0 < q <= 1): the
// upper edge of the first bucket at which the cumulative count reaches
// q*Count. Resolution is a factor of two, which is what log-bucketing
// buys; exact enough to rank wait-time distributions across locks.
func (h *Hist) Quantile(q float64) int64 {
	if h.count == 0 {
		return 0
	}
	target := int64(q * float64(h.count))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i := 0; i < histBuckets; i++ {
		cum += h.buckets[i]
		if cum >= target {
			if u := bucketUpper(i); u < h.max {
				return u
			}
			return h.max
		}
	}
	return h.max
}

// BucketCount is one non-empty bucket of an exported histogram.
type BucketCount struct {
	// LeNs is the bucket's inclusive upper bound in ns.
	LeNs int64 `json:"le_ns"`
	// Count is the number of samples in the bucket.
	Count int64 `json:"count"`
}

// HistStats is the flat JSON form of a histogram.
type HistStats struct {
	Count   int64         `json:"count"`
	MeanNs  float64       `json:"mean_ns"`
	P50Ns   int64         `json:"p50_ns"`
	P90Ns   int64         `json:"p90_ns"`
	P99Ns   int64         `json:"p99_ns"`
	MaxNs   int64         `json:"max_ns"`
	Buckets []BucketCount `json:"buckets,omitempty"`
}

// Stats summarizes the histogram for export. Buckets are emitted sparsely
// in ascending bound order (a fixed array scan — no map order leaks).
func (h *Hist) Stats() HistStats {
	s := HistStats{
		Count:  h.count,
		MeanNs: h.Mean(),
		P50Ns:  h.Quantile(0.50),
		P90Ns:  h.Quantile(0.90),
		P99Ns:  h.Quantile(0.99),
		MaxNs:  h.max,
	}
	for i := 0; i < histBuckets; i++ {
		if h.buckets[i] > 0 {
			s.Buckets = append(s.Buckets, BucketCount{LeNs: bucketUpper(i), Count: h.buckets[i]})
		}
	}
	return s
}
