package telemetry

import "testing"

func TestVCIFamily(t *testing.T) {
	cases := []struct{ in, want string }{
		{"cs[r0.v0]", "cs[r0.v*]"},
		{"cs[r3.v17]", "cs[r3.v*]"},
		{"cs[r0]", "cs[r0]"},
		{"nic[r2]", "nic[r2]"},
		{"queue[r1]", "queue[r1]"},
		{"cs[r0.vx]", "cs[r0.vx]"}, // non-numeric shard: not a family
		{"cs[r0.v]", "cs[r0.v]"},   // empty shard index: not a family
		{"weird.v3", "weird.v3"},   // no bracket suffix: not a family
	}
	for _, c := range cases {
		if got := vciFamily(c.in); got != c.want {
			t.Errorf("vciFamily(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestGroupVCILocks(t *testing.T) {
	p := &Profile{Locks: []LockProfile{
		{Name: "cs[r0.v0]", Acquisitions: 10, HighAcq: 6, LowAcq: 4, Uncontended: 2,
			UsefulAcq: 3, Wait: HistStats{Count: 4, MeanNs: 100, MaxNs: 250}},
		{Name: "cs[r0.v1]", Acquisitions: 20, HighAcq: 12, LowAcq: 8, Uncontended: 5,
			UsefulAcq: 7, Wait: HistStats{Count: 2, MeanNs: 50, MaxNs: 900}},
		{Name: "nic[r0]", Acquisitions: 30, HighAcq: 30, Uncontended: 1,
			Wait: HistStats{Count: 10, MeanNs: 10, MaxNs: 40}},
		{Name: "cs[r1.v0]", Acquisitions: 5},
	}}
	gs := GroupVCILocks(p)
	if len(gs) != 3 {
		t.Fatalf("got %d groups, want 3: %+v", len(gs), gs)
	}
	// Sorted by name: cs[r0.v*], cs[r1.v*], nic[r0].
	g := gs[0]
	if g.Name != "cs[r0.v*]" || g.Members != 2 {
		t.Fatalf("group 0 = %+v, want cs[r0.v*] with 2 members", g)
	}
	if g.Acquisitions != 30 || g.HighAcq != 18 || g.LowAcq != 12 ||
		g.Uncontended != 7 || g.UsefulAcq != 10 {
		t.Errorf("cs[r0.v*] sums wrong: %+v", g)
	}
	if g.WaitNs != 4*100+2*50 {
		t.Errorf("cs[r0.v*] WaitNs = %v, want 500", g.WaitNs)
	}
	if g.MaxWaitNs != 900 {
		t.Errorf("cs[r0.v*] MaxWaitNs = %v, want 900", g.MaxWaitNs)
	}
	if gs[1].Name != "cs[r1.v*]" || gs[1].Members != 1 || gs[1].Acquisitions != 5 {
		t.Errorf("group 1 = %+v, want cs[r1.v*] singleton", gs[1])
	}
	if gs[2].Name != "nic[r0]" || gs[2].Members != 1 || gs[2].WaitNs != 100 {
		t.Errorf("group 2 = %+v, want nic[r0] with WaitNs 100", gs[2])
	}
	if GroupVCILocks(nil) != nil {
		t.Errorf("nil profile should group to nil")
	}
}
