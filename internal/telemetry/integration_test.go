package telemetry_test

import (
	"bytes"
	"testing"

	"mpicontend/internal/simlock"
	"mpicontend/internal/telemetry"
	"mpicontend/internal/workloads"
)

// tracedRun executes a small contended throughput benchmark with a fresh
// recorder attached and returns the recorder plus the headline result.
func tracedRun(t *testing.T, rec *telemetry.Recorder) workloads.ThroughputResult {
	t.Helper()
	r, err := workloads.Throughput(workloads.ThroughputParams{
		Lock: simlock.KindMutex, Threads: 4, MsgBytes: 64,
		Window: 16, Windows: 2, Seed: 42, TraceRank: -1, Tel: rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestTraceDeterminism is the tentpole acceptance check in miniature:
// same seed → byte-identical Perfetto trace and profile JSON.
func TestTraceDeterminism(t *testing.T) {
	r1, r2 := telemetry.New(), telemetry.New()
	tracedRun(t, r1)
	tracedRun(t, r2)

	t1, t2 := r1.Perfetto(), r2.Perfetto()
	if !bytes.Equal(t1, t2) {
		t.Fatalf("Perfetto traces differ across same-seed runs (%d vs %d bytes)",
			len(t1), len(t2))
	}
	p1, err := r1.Profile().Marshal()
	if err != nil {
		t.Fatal(err)
	}
	p2, err := r2.Profile().Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(p1, p2) {
		t.Fatal("profiles differ across same-seed runs")
	}
	if err := telemetry.ValidateTrace(t1); err != nil {
		t.Fatalf("trace invalid: %v", err)
	}
	if err := telemetry.ValidateProfile(p1); err != nil {
		t.Fatalf("profile invalid: %v", err)
	}
}

// TestTelemetryObservational verifies that attaching the recorder does
// not perturb the simulation: results match a bare run exactly.
func TestTelemetryObservational(t *testing.T) {
	bare := tracedRun(t, nil)
	traced := tracedRun(t, telemetry.New())
	if bare.Messages != traced.Messages || bare.SimNs != traced.SimNs ||
		bare.RateMsgsPerSec != traced.RateMsgsPerSec {
		t.Fatalf("telemetry perturbed the run:\nbare   %+v\ntraced %+v", bare, traced)
	}
}

// TestProfileContents sanity-checks the derived reports against what the
// workload must have done.
func TestProfileContents(t *testing.T) {
	rec := telemetry.New()
	res := tracedRun(t, rec)
	if res.Messages == 0 {
		t.Fatal("benchmark moved no messages")
	}
	p := rec.Profile()

	if len(p.Locks) == 0 {
		t.Fatal("no lock profiles recorded")
	}
	var acq, waits, holds int64
	for _, l := range p.Locks {
		acq += l.Acquisitions
		waits += l.Wait.Count
		holds += l.Hold.Count
		if l.Wait.Count != l.Acquisitions || l.Hold.Count != l.Acquisitions {
			t.Errorf("lock %s: wait/hold counts %d/%d != acq %d",
				l.Name, l.Wait.Count, l.Hold.Count, l.Acquisitions)
		}
		if l.HighAcq+l.LowAcq != l.Acquisitions {
			t.Errorf("lock %s: class split broken", l.Name)
		}
		var placeAcq int64
		for _, pc := range l.Places {
			placeAcq += pc.Acquisitions
		}
		if placeAcq != l.Acquisitions {
			t.Errorf("lock %s: per-place acq %d != %d", l.Name, placeAcq, l.Acquisitions)
		}
	}
	if acq == 0 || waits == 0 || holds == 0 {
		t.Fatalf("contended run recorded no lock activity: acq=%d", acq)
	}
	if p.Progress.Polls == 0 {
		t.Fatal("no progress polls recorded")
	}
	if p.Progress.UsefulPolls > p.Progress.Polls {
		t.Fatalf("useful polls %d > polls %d", p.Progress.UsefulPolls, p.Progress.Polls)
	}
	if p.CriticalPath.Messages == 0 || p.CriticalPath.WireNs == 0 {
		t.Fatalf("critical path empty: %+v", p.CriticalPath)
	}
	if p.Dangling.Samples == 0 {
		t.Fatal("no dangling-request samples")
	}
	if p.SimEndNs != res.SimNs {
		// The recorder's horizon is the last observed event, which must
		// not exceed the simulated run time.
		if p.SimEndNs > res.SimNs {
			t.Fatalf("telemetry horizon %d beyond sim end %d", p.SimEndNs, res.SimNs)
		}
	}
}
