package telemetry

import (
	"strings"
	"testing"

	"mpicontend/internal/report"
)

func TestHistBuckets(t *testing.T) {
	var h Hist
	for _, d := range []int64{0, 1, 2, 3, 4, 100, 1 << 20} {
		h.Add(d)
	}
	if h.Count() != 7 {
		t.Fatalf("count = %d, want 7", h.Count())
	}
	if h.Max() != 1<<20 {
		t.Fatalf("max = %d", h.Max())
	}
	// 0 → bucket 0 (<= 0); 1 → bucket 1 (<= 1); 2,3 → bucket 2 (<= 3).
	if got := bucketOf(0); got != 0 {
		t.Errorf("bucketOf(0) = %d", got)
	}
	if got := bucketOf(1); got != 1 {
		t.Errorf("bucketOf(1) = %d", got)
	}
	if got := bucketOf(3); got != 2 {
		t.Errorf("bucketOf(3) = %d", got)
	}
	if got := bucketUpper(2); got != 3 {
		t.Errorf("bucketUpper(2) = %d", got)
	}
	// Negative durations clamp to the zero bucket rather than panicking.
	h.Add(-5)
	if h.Count() != 8 {
		t.Fatalf("negative add not counted")
	}
}

func TestHistQuantiles(t *testing.T) {
	var h Hist
	for i := int64(1); i <= 100; i++ {
		h.Add(i)
	}
	// Quantile returns a bucket upper bound ≥ the true quantile and ≤ max.
	p50 := h.Quantile(0.5)
	if p50 < 50 || p50 > h.Max() {
		t.Errorf("p50 = %d out of [50, %d]", p50, h.Max())
	}
	if q := h.Quantile(1.0); q != h.Max() {
		t.Errorf("p100 = %d, want max %d", q, h.Max())
	}
	var empty Hist
	if q := empty.Quantile(0.9); q != 0 {
		t.Errorf("empty quantile = %d", q)
	}

	st := h.Stats()
	if st.Count != 100 {
		t.Fatalf("stats count = %v", st.Count)
	}
	var n int64
	for _, b := range st.Buckets {
		n += b.Count
	}
	if n != 100 {
		t.Fatalf("bucket counts sum to %d, want 100", n)
	}
	for i := 1; i < len(st.Buckets); i++ {
		if st.Buckets[i].LeNs <= st.Buckets[i-1].LeNs {
			t.Fatalf("buckets not ascending: %+v", st.Buckets)
		}
	}
}

// TestNilRecorderSafe locks in the zero-overhead-when-disabled contract:
// every recording method must be a no-op on a nil receiver.
func TestNilRecorderSafe(t *testing.T) {
	var r *Recorder
	if r.Enabled() {
		t.Fatal("nil recorder reports enabled")
	}
	r.RegisterThread(0, "t0")
	_ = r.RegisterLock("l0")
	r.Call(0, "Isend", 0, 10)
	r.Poll(0, 0, 10, 1)
	r.LockWait(0, 0, ClassHigh, 0, 5)
	r.LockHold(0, 0, ClassHigh, true, 0, 0, 5, 9)
	r.Inject(0, "Eager", 64, 0, 3)
	r.Flight(0, 1, "Eager", 64, 3, 9)
	r.Dangling(5, 1)
	r.Unexpected(100)
	r.ThreadState(0, 0, "running")
	if r.Spans() != nil {
		t.Fatal("nil recorder returned spans")
	}
	if r.SimEnd() != 0 {
		t.Fatal("nil recorder has sim end")
	}
	// A nil recorder still exports a well-formed (empty) trace.
	if b := r.Perfetto(); !strings.Contains(string(b), `"traceEvents":[]`) {
		t.Fatalf("nil recorder Perfetto = %q", b)
	}
	// Profile on a nil recorder is an empty-but-valid document.
	if p := r.Profile(); p.Schema != ProfileSchema || p.Spans != 0 || len(p.Locks) != 0 {
		t.Fatalf("nil recorder profile = %+v", p)
	}
}

func TestRecorderSpansAndProfile(t *testing.T) {
	r := New()
	r.RegisterThread(0, "r0.worker0")
	r.RegisterThread(1, "r0.worker1")
	cs := r.RegisterLock("cs[r0]")

	r.ThreadState(0, 0, "running")
	r.ThreadState(1, 0, "running")
	// Thread 0 holds uncontended; thread 1 waits, then gets a handoff.
	r.LockWait(cs, 0, ClassHigh, 0, 0)
	r.LockHold(cs, 0, ClassHigh, false, 0, 0, 0, 100)
	r.LockWait(cs, 1, ClassLow, 50, 100)
	r.LockHold(cs, 1, ClassLow, true, 0, 1, 100, 180)
	r.Call(0, "Isend", 0, 120)
	r.Poll(1, 100, 180, 2)
	r.Dangling(60, 1)
	r.Dangling(120, 0)
	r.Unexpected(40)
	r.ThreadState(0, 200, "done")
	r.ThreadState(1, 200, "done")

	if n := len(r.Spans()); n != 6 {
		t.Fatalf("span count = %d, want 6", n)
	}
	p := r.Profile()
	if len(p.Locks) != 1 {
		t.Fatalf("lock profiles = %d", len(p.Locks))
	}
	l := p.Locks[0]
	if l.Name != "cs[r0]" || l.Acquisitions != 2 {
		t.Fatalf("lock profile = %+v", l)
	}
	if l.HighAcq != 1 || l.LowAcq != 1 {
		t.Fatalf("class split = %d/%d", l.HighAcq, l.LowAcq)
	}
	if l.Uncontended != 1 {
		t.Fatalf("uncontended = %d, want 1 (thread 0 waited 0ns)", l.Uncontended)
	}
	if l.UsefulAcq != 1 {
		t.Fatalf("useful = %d", l.UsefulAcq)
	}
	// Thread 1 waited from 50, lock released at 100, granted at 100:
	// one handoff of 0ns.
	if l.Handoff.Count != 1 {
		t.Fatalf("handoffs = %v", l.Handoff.Count)
	}
	if p.Progress.Polls != 1 || p.Progress.EventsHandled != 2 || p.Progress.UsefulPolls != 1 {
		t.Fatalf("progress = %+v", p.Progress)
	}
	if p.UnexpectedQueue.Count != 1 {
		t.Fatalf("unexpected queue = %+v", p.UnexpectedQueue)
	}
	if p.Dangling.Max != 1 || p.Dangling.Samples != 2 {
		t.Fatalf("dangling = %+v", p.Dangling)
	}
	if p.SimEndNs != 200 {
		t.Fatalf("sim end = %d", p.SimEndNs)
	}
	txt := p.Text()
	for _, want := range []string{"cs[r0]", "progress", "critical path"} {
		if !strings.Contains(txt, want) {
			t.Errorf("profile text missing %q:\n%s", want, txt)
		}
	}
}

func TestThreadStateDedup(t *testing.T) {
	r := New()
	r.RegisterThread(0, "t")
	r.ThreadState(0, 0, "running")
	r.ThreadState(0, 10, "sleeping") // merges into running
	r.ThreadState(0, 20, "parked")
	r.ThreadState(0, 30, "running")
	r.ThreadState(0, 40, "done")
	if n := len(r.sched); n != 4 {
		t.Fatalf("sched recs = %d, want 4 (sleeping merged into running)", n)
	}
}

func TestDanglingCollapsesSameInstant(t *testing.T) {
	r := New()
	r.Dangling(10, 1)
	r.Dangling(10, 2)
	r.Dangling(20, 1)
	if len(r.dangling) != 2 {
		t.Fatalf("samples = %d, want 2", len(r.dangling))
	}
	if r.dangling[0].Value != 2 {
		t.Fatalf("same-instant sample not collapsed to last: %+v", r.dangling[0])
	}
}

func TestPerfettoExportAndValidate(t *testing.T) {
	r := New()
	r.RegisterThread(0, "w0")
	cs := r.RegisterLock("cs")
	r.ThreadState(0, 0, "running")
	r.LockWait(cs, 0, ClassHigh, 0, 5)
	r.LockHold(cs, 0, ClassHigh, true, 0, 0, 5, 20)
	r.Call(0, "Isend", 0, 25)
	r.Inject(0, "Eager", 64, 5, 8)
	r.Flight(0, 1, "Eager", 64, 8, 30)
	r.Dangling(12, 1)
	r.ThreadState(0, 40, "done")

	data := r.Perfetto()
	if err := ValidateTrace(data); err != nil {
		t.Fatalf("ValidateTrace: %v\n%s", err, data)
	}
	for _, want := range []string{
		`"schema":"mpicontend/trace/v1"`, `"name":"Isend"`, `"ph":"b"`,
		`"ph":"e"`, `"name":"dangling"`,
	} {
		if !strings.Contains(strings.ReplaceAll(string(data), " ", ""), want) {
			t.Errorf("trace missing %s", want)
		}
	}

	prof, err := r.Profile().Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateProfile(prof); err != nil {
		t.Fatalf("ValidateProfile: %v\n%s", err, prof)
	}
}

func TestValidateTraceRejectsBadInput(t *testing.T) {
	cases := map[string]string{
		"not json":       `{`,
		"bad phase":      `{"traceEvents":[{"ph":"Z","pid":1,"tid":0,"ts":"0"}]}`,
		"unbalanced b/e": `{"traceEvents":[{"ph":"b","pid":3,"tid":0,"ts":"0","id":"f0","name":"x","cat":"c"}]}`,
		"negative dur":   `{"traceEvents":[{"ph":"X","pid":1,"tid":0,"ts":"0","dur":"-1","name":"x","cat":"c"}]}`,
	}
	for name, in := range cases {
		if err := ValidateTrace([]byte(in)); err == nil {
			t.Errorf("%s: validation passed, want error", name)
		}
	}
	if err := ValidateProfile([]byte(`{"schema":"wrong"}`)); err == nil {
		t.Error("wrong profile schema accepted")
	}
}

func TestFigureRoundtrip(t *testing.T) {
	tab := &report.Table{ID: "fig8a", Title: "Throughput", XLabel: "bytes", YLabel: "msgs/s"}
	s := tab.AddSeries("Mutex")
	s.Add(1, 1000.5)
	s.Add(64, 900.25)
	tab.AddSeries("Ticket").Add(1, 2000)

	f := FigureFromTable(tab)
	if f.Schema != FigureSchema || f.ID != "fig8a" || len(f.Series) != 2 {
		t.Fatalf("figure = %+v", f)
	}
	// The ASCII rendering through the JSON form must be byte-identical
	// to rendering the table directly — the exporter is lossless.
	if got, want := f.ASCII(), tab.Format(); got != want {
		t.Fatalf("ASCII roundtrip diverged:\n got %q\nwant %q", got, want)
	}
	if got, want := f.Chart(), tab.Chart(); got != want {
		t.Fatalf("Chart roundtrip diverged")
	}

	data, err := f.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateFigure(data); err != nil {
		t.Fatalf("ValidateFigure: %v", err)
	}
	if err := ValidateFigure([]byte(`{"schema":"mpicontend/figure/v1","id":"","series":[]}`)); err == nil {
		t.Error("empty figure accepted")
	}
}
