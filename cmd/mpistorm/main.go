// Command mpistorm regenerates the tables and figures of "MPI+Threads:
// Runtime Contention and Remedies" (PPoPP'15) from the simulated
// reproduction.
//
// Usage:
//
//	mpistorm -list
//	mpistorm -experiment fig8a
//	mpistorm -experiment all -quick
//
// Each experiment prints an aligned table whose rows/series mirror the
// paper's plot; EXPERIMENTS.md records the paper-vs-measured comparison.
package main

//simcheck:allow-file nodeterm harness wall-clock timing of real runs; simulation state is seeded inside experiments

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"mpicontend/mpisim"
)

func main() {
	list := flag.Bool("list", false, "list available experiments and exit")
	exp := flag.String("experiment", "", "experiment id to run, or 'all'")
	quick := flag.Bool("quick", false, "run reduced sweeps (seconds instead of minutes)")
	chart := flag.Bool("chart", false, "render ASCII charts in addition to tables")
	jsonDir := flag.String("json", "", "also write each figure as <dir>/<id>.json (flat results schema)")
	seed := flag.Uint64("seed", 0, "base RNG seed (0 = default)")
	flag.Parse()

	if *list || *exp == "" {
		fmt.Println("available experiments:")
		for _, id := range mpisim.Experiments() {
			fmt.Printf("  %s\n", id)
		}
		if *exp == "" && !*list {
			fmt.Println("\nrun one with: mpistorm -experiment <id> [-quick]")
		}
		return
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = mpisim.Experiments()
	}
	if *jsonDir != "" {
		if err := os.MkdirAll(*jsonDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "mpistorm: %v\n", err)
			os.Exit(1)
		}
	}
	for _, id := range ids {
		start := time.Now()
		figs, err := mpisim.RunExperimentSeeded(id, *quick, *seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mpistorm: %v\n", err)
			os.Exit(1)
		}
		for _, f := range figs {
			fmt.Printf("== %s — %s ==\n%s\n", f.ID, f.Title, f.Text)
			if *chart && f.Chart != "" {
				fmt.Println(f.Chart)
			}
			if *jsonDir != "" && f.Data != nil {
				data, err := f.Data.Marshal()
				if err != nil {
					fmt.Fprintf(os.Stderr, "mpistorm: marshal %s: %v\n", f.ID, err)
					os.Exit(1)
				}
				path := filepath.Join(*jsonDir, f.ID+".json")
				if err := os.WriteFile(path, data, 0o644); err != nil {
					fmt.Fprintf(os.Stderr, "mpistorm: %v\n", err)
					os.Exit(1)
				}
			}
		}
		fmt.Printf("(%s took %.1fs)\n\n", id, time.Since(start).Seconds())
	}
}
