// Command mpistorm regenerates the tables and figures of "MPI+Threads:
// Runtime Contention and Remedies" (PPoPP'15) from the simulated
// reproduction.
//
// Usage:
//
//	mpistorm -list
//	mpistorm -experiment fig8a
//	mpistorm -experiment all -quick -jobs 4
//
// Each experiment prints an aligned table whose rows/series mirror the
// paper's plot; EXPERIMENTS.md records the paper-vs-measured comparison.
//
// -jobs N fans the experiments' independent simulation points across N
// workers. Everything written to stdout (and to -json files) is
// byte-identical at every -jobs value, including -jobs 1's strictly
// serial path — parallelism only changes wall-clock time. Timing goes to
// stderr, which carries no determinism guarantee.
package main

//simcheck:allow-file nodeterm harness wall-clock timing of real runs; simulation state is seeded inside experiments

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"mpicontend/mpisim"
)

func main() {
	list := flag.Bool("list", false, "list available experiments and exit")
	exp := flag.String("experiment", "", "experiment id to run, or 'all'")
	quick := flag.Bool("quick", false, "run reduced sweeps (seconds instead of minutes)")
	chart := flag.Bool("chart", false, "render ASCII charts in addition to tables")
	jsonDir := flag.String("json", "", "also write each figure as <dir>/<id>.json (flat results schema)")
	seed := flag.Uint64("seed", 0, "base RNG seed (0 = default)")
	jobs := flag.Int("jobs", runtime.NumCPU(),
		"parallel workers for the point sweep (1 = serial; output is byte-identical either way)")
	progressFlag := flag.String("progress", "polling",
		"progress mode for the experiments that honour it: polling|strong|continuation (see docs/PROGRESS.md)")
	flag.Parse()

	progress, err := parseProgress(*progressFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mpistorm: %v\n", err)
		os.Exit(2)
	}

	if *list || *exp == "" {
		fmt.Println("available experiments:")
		for _, id := range mpisim.Experiments() {
			fmt.Printf("  %s\n", id)
		}
		if *exp == "" && !*list {
			fmt.Println("\nrun one with: mpistorm -experiment <id> [-quick]")
		}
		return
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = mpisim.Experiments()
	}
	if *jsonDir != "" {
		if err := os.MkdirAll(*jsonDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "mpistorm: %v\n", err)
			os.Exit(1)
		}
	}

	emit := func(f mpisim.Figure) error {
		fmt.Printf("== %s — %s ==\n%s\n", f.ID, f.Title, f.Text)
		if *chart && f.Chart != "" {
			fmt.Println(f.Chart)
		}
		if *jsonDir != "" && f.Data != nil {
			data, err := f.Data.Marshal()
			if err != nil {
				return fmt.Errorf("marshal %s: %w", f.ID, err)
			}
			path := filepath.Join(*jsonDir, f.ID+".json")
			if err := os.WriteFile(path, data, 0o644); err != nil {
				return err
			}
		}
		return nil
	}

	start := time.Now()
	if *jobs <= 1 {
		// Strictly serial: every point runs on this goroutine, in
		// declaration order, exactly as the original single-threaded
		// driver did.
		for _, id := range ids {
			expStart := time.Now()
			var figs []mpisim.Figure
			figs, err = mpisim.RunExperimentMode(id, *quick, *seed, progress)
			if err != nil {
				break
			}
			for _, f := range figs {
				if err = emit(f); err != nil {
					break
				}
			}
			if err != nil {
				break
			}
			fmt.Fprintf(os.Stderr, "(%s took %.1fs)\n", id, time.Since(expStart).Seconds())
		}
	} else {
		err = mpisim.SweepFunc(
			mpisim.SweepConfig{IDs: ids, Quick: *quick, Seed: *seed, Jobs: *jobs,
				Progress: progress},
			func(r mpisim.SweepResult) error {
				for _, f := range r.Figures {
					if err := emit(f); err != nil {
						return err
					}
				}
				fmt.Fprintf(os.Stderr, "(%s done at %.1fs)\n", r.ID, time.Since(start).Seconds())
				return nil
			})
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "mpistorm: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "(total %.1fs, jobs=%d)\n", time.Since(start).Seconds(), *jobs)
}

// parseProgress maps the -progress flag value to a progress mode.
func parseProgress(s string) (mpisim.ProgressMode, error) {
	switch s {
	case "polling", "":
		return mpisim.PollingProgress, nil
	case "strong":
		return mpisim.StrongProgress, nil
	case "continuation":
		return mpisim.ContinuationProgress, nil
	default:
		return 0, fmt.Errorf("unknown -progress mode %q (polling|strong|continuation)", s)
	}
}
