// Command mpitrace records a deterministic execution trace of an
// experiment's representative workload and exports it for inspection:
//
//	mpitrace -experiment fig8a -quick -out artifacts/trace
//
// writes trace.json (Chrome trace_event format — open in ui.perfetto.dev
// or chrome://tracing) and profile.json (lock-contention, progress-engine
// and critical-path analysis), and prints the profile as text. Traces key
// entirely off the simulated clock: the same -experiment/-quick/-seed
// triple always produces byte-identical files.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"mpicontend/internal/telemetry"
	"mpicontend/mpisim"
)

func main() {
	exp := flag.String("experiment", "", "experiment id whose representative point to trace (see mpistorm -list)")
	quick := flag.Bool("quick", false, "trace the reduced workload")
	seed := flag.Uint64("seed", 0, "base RNG seed (0 = default)")
	out := flag.String("out", ".", "directory to write trace.json and profile.json into")
	check := flag.Bool("check", false, "validate the emitted trace and profile against their schemas")
	flag.Parse()

	if *exp == "" {
		fmt.Fprintln(os.Stderr, "mpitrace: -experiment is required (see mpistorm -list)")
		os.Exit(2)
	}

	tel, desc, err := mpisim.TraceExperiment(*exp, *quick, *seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mpitrace: %v\n", err)
		os.Exit(1)
	}

	trace := tel.PerfettoJSON()
	profile, err := tel.ProfileJSON()
	if err != nil {
		fmt.Fprintf(os.Stderr, "mpitrace: marshal profile: %v\n", err)
		os.Exit(1)
	}
	if *check {
		if err := telemetry.ValidateTrace(trace); err != nil {
			fmt.Fprintf(os.Stderr, "mpitrace: trace validation: %v\n", err)
			os.Exit(1)
		}
		if err := telemetry.ValidateProfile(profile); err != nil {
			fmt.Fprintf(os.Stderr, "mpitrace: profile validation: %v\n", err)
			os.Exit(1)
		}
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "mpitrace: %v\n", err)
		os.Exit(1)
	}
	tracePath := filepath.Join(*out, "trace.json")
	profilePath := filepath.Join(*out, "profile.json")
	if err := os.WriteFile(tracePath, trace, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "mpitrace: %v\n", err)
		os.Exit(1)
	}
	if err := os.WriteFile(profilePath, profile, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "mpitrace: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("traced %s (%s): %d spans\n", *exp, desc, tel.Spans())
	fmt.Printf("wrote %s (%d bytes) and %s (%d bytes)\n\n",
		tracePath, len(trace), profilePath, len(profile))
	fmt.Print(tel.ProfileText())
}
