// Command mpitrace records a deterministic execution trace of an
// experiment's representative workload and exports it for inspection:
//
//	mpitrace -experiment fig8a -quick -out artifacts/trace
//
// writes trace.json (Chrome trace_event format — open in ui.perfetto.dev
// or chrome://tracing) and profile.json (lock-contention, progress-engine
// and critical-path analysis), and prints the profile as text. Traces key
// entirely off the simulated clock: the same -experiment/-quick/-seed
// triple always produces byte-identical files.
//
// -experiment also accepts a comma-separated id list or 'all'. With more
// than one experiment each trace lands in <out>/<id>/, only the summary
// lines print (no profile text), and -jobs N traces experiments across N
// workers — stdout and the written files are byte-identical at every
// -jobs value.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"

	"mpicontend/internal/telemetry"
	"mpicontend/mpisim"
)

// traced is one experiment's captured telemetry, produced on a worker and
// rendered serially in id order.
type traced struct {
	tel  *mpisim.Telemetry
	desc string
}

func main() {
	exp := flag.String("experiment", "", "experiment id to trace, a comma-separated list, or 'all' (see mpistorm -list)")
	quick := flag.Bool("quick", false, "trace the reduced workload")
	seed := flag.Uint64("seed", 0, "base RNG seed (0 = default)")
	out := flag.String("out", ".", "directory to write trace.json and profile.json into (per-experiment subdirectories when tracing several)")
	check := flag.Bool("check", false, "validate the emitted trace and profile against their schemas")
	jobs := flag.Int("jobs", runtime.NumCPU(),
		"parallel workers when tracing several experiments (1 = serial; output is byte-identical either way)")
	progressFlag := flag.String("progress", "polling",
		"progress mode for the probes that honour it: polling|strong|continuation (see docs/PROGRESS.md)")
	flag.Parse()

	if *exp == "" {
		fmt.Fprintln(os.Stderr, "mpitrace: -experiment is required (see mpistorm -list)")
		os.Exit(2)
	}
	progress, err := parseProgress(*progressFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mpitrace: %v\n", err)
		os.Exit(2)
	}

	ids := strings.Split(*exp, ",")
	if *exp == "all" {
		ids = mpisim.Experiments()
	}

	// Tracing an experiment is an isolated simulation, so several trace
	// like any other point sweep: fan across workers, render in id order.
	results := make([]traced, len(ids))
	err = mpisim.RunPoints(*jobs, len(ids), func(i int) error {
		tel, desc, err := mpisim.TraceExperimentMode(ids[i], *quick, *seed, progress)
		if err != nil {
			return err
		}
		results[i] = traced{tel: tel, desc: desc}
		return nil
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "mpitrace: %v\n", err)
		os.Exit(1)
	}

	multi := len(ids) > 1
	for i, id := range ids {
		dir := *out
		if multi {
			dir = filepath.Join(*out, id)
		}
		if err := render(id, results[i], dir, *check, multi); err != nil {
			fmt.Fprintf(os.Stderr, "mpitrace: %v\n", err)
			os.Exit(1)
		}
	}
}

// render validates, writes, and reports one experiment's trace. In multi
// mode only the summary lines print; a single experiment also prints the
// full profile text, exactly as earlier single-experiment releases did.
func render(id string, r traced, dir string, check, multi bool) error {
	trace := r.tel.PerfettoJSON()
	profile, err := r.tel.ProfileJSON()
	if err != nil {
		return fmt.Errorf("marshal profile: %w", err)
	}
	if check {
		if err := telemetry.ValidateTrace(trace); err != nil {
			return fmt.Errorf("trace validation: %w", err)
		}
		if err := telemetry.ValidateProfile(profile); err != nil {
			return fmt.Errorf("profile validation: %w", err)
		}
	}

	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tracePath := filepath.Join(dir, "trace.json")
	profilePath := filepath.Join(dir, "profile.json")
	if err := os.WriteFile(tracePath, trace, 0o644); err != nil {
		return err
	}
	if err := os.WriteFile(profilePath, profile, 0o644); err != nil {
		return err
	}

	fmt.Printf("traced %s (%s): %d spans\n", id, r.desc, r.tel.Spans())
	fmt.Printf("wrote %s (%d bytes) and %s (%d bytes)\n\n",
		tracePath, len(trace), profilePath, len(profile))
	if !multi {
		fmt.Print(r.tel.ProfileText())
	}
	return nil
}

// parseProgress maps the -progress flag value to a progress mode.
func parseProgress(s string) (mpisim.ProgressMode, error) {
	switch s {
	case "polling", "":
		return mpisim.PollingProgress, nil
	case "strong":
		return mpisim.StrongProgress, nil
	case "continuation":
		return mpisim.ContinuationProgress, nil
	default:
		return 0, fmt.Errorf("unknown -progress mode %q (polling|strong|continuation)", s)
	}
}
