// Command biasprobe runs the paper's §4.3 arbitration-fairness analysis:
// it traces every critical-section acquisition of the receiving runtime in
// the multithreaded throughput benchmark and reports the core- and
// socket-level bias factors of the chosen lock against a fair arbitration,
// the §4.4 dangling-request metric, and (with -timeline) an ASCII rendering
// of lock ownership over time in which monopolization is directly visible.
//
// Usage:
//
//	biasprobe -lock mutex -threads 8 -bytes 64 -timeline
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"mpicontend/internal/machine"
	"mpicontend/internal/simlock"
	"mpicontend/internal/trace"
	"mpicontend/internal/workloads"
)

func parseLock(s string) (simlock.Kind, error) {
	switch strings.ToLower(s) {
	case "mutex":
		return simlock.KindMutex, nil
	case "ticket":
		return simlock.KindTicket, nil
	case "priority":
		return simlock.KindPriority, nil
	case "tas":
		return simlock.KindTAS, nil
	case "mcs":
		return simlock.KindMCS, nil
	case "cohort":
		return simlock.KindCohort, nil
	case "socketpriority":
		return simlock.KindSocketPriority, nil
	default:
		return 0, fmt.Errorf("unknown lock %q (mutex|ticket|priority|tas|mcs|cohort|socketpriority)", s)
	}
}

func main() {
	lockName := flag.String("lock", "mutex", "critical-section arbitration to probe")
	threads := flag.Int("threads", 8, "threads per process")
	bytes := flag.Int64("bytes", 64, "message size")
	windows := flag.Int("windows", 10, "request windows per thread")
	scatter := flag.Bool("scatter", false, "scatter binding instead of compact")
	timeline := flag.Bool("timeline", false, "render the lock-ownership timeline")
	seed := flag.Uint64("seed", 42, "simulation seed")
	flag.Parse()

	lock, err := parseLock(*lockName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "biasprobe: %v\n", err)
		os.Exit(1)
	}
	binding := machine.Compact
	if *scatter {
		binding = machine.Scatter
	}

	tl := &trace.TimelineRecorder{Cap: 4096}
	p := workloads.ThroughputParams{
		Lock: lock, Binding: binding, Threads: *threads,
		MsgBytes: *bytes, Windows: *windows, Seed: *seed, TraceRank: 1,
	}
	r, err := workloads.ThroughputWithHook(p, func(rank int) simlock.GrantFunc {
		if rank != 1 || !*timeline {
			return nil
		}
		return tl.Observe
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "biasprobe: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("lock=%v threads=%d bytes=%d binding=%v\n", lock, *threads, *bytes, binding)
	fmt.Printf("  message rate     : %.0f msgs/s\n", r.RateMsgsPerSec)
	fmt.Printf("  bias factor core : %.2f   (fair = 1; paper measures ~2 for mutex)\n", r.BiasCore)
	fmt.Printf("  bias factor sock : %.2f   (fair = 1; paper measures ~1.25 for mutex)\n", r.BiasSocket)
	fmt.Printf("  dangling avg     : %.1f requests\n", r.DanglingAvg)
	if *timeline {
		fmt.Printf("  max grant share  : %.1f%%   longest same-thread run: %d\n",
			100*tl.MaxShare(), tl.LongestRun())
		fmt.Println()
		fmt.Print(tl.Render(72))
	}
}
