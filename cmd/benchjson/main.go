// Command benchjson converts `go test -bench -benchmem` output on stdin
// into a machine-readable JSON benchmark report. Each benchmark line
//
//	BenchmarkSimulatorEventRate-8   34   34200000 ns/op   1045.8 k_events/s   718840 B/op   5904 allocs/op
//
// becomes one entry keyed by its name (the -GOMAXPROCS suffix stripped)
// holding ns/op, B/op, allocs/op, and every extra b.ReportMetric value
// under its unit. `make bench` pipes the repository benchmarks through it
// to produce BENCH_5.json, which CI uploads as a regression-tracking
// artifact: allocs/op is deterministic, so any allocation regression on
// the simulator fast path shows as a diff between two CI runs' artifacts.
//
// benchjson is driver shell (docs/ARCHITECTURE.md): it only reshapes
// harness output and never touches simulation state.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// entry is one benchmark's parsed results.
type entry struct {
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op"`
	AllocsPerOp float64            `json:"allocs_per_op"`
	// Metrics holds b.ReportMetric values keyed by unit (the figure's
	// headline metric, e.g. "k_msgs/s").
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

type reportFile struct {
	// Go "go test -bench" provenance lines (goos/goarch/pkg/cpu).
	Meta map[string]string `json:"meta,omitempty"`
	// Benchmarks maps benchmark name to parsed results, sorted by key on
	// output for diff-stable artifacts.
	Benchmarks map[string]*entry `json:"benchmarks"`
}

func main() {
	out := flag.String("out", "", "output path (default stdout)")
	flag.Parse()

	rep := reportFile{Meta: map[string]string{}, Benchmarks: map[string]*entry{}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "" || strings.HasPrefix(line, "PASS") ||
			strings.HasPrefix(line, "ok ") || strings.HasPrefix(line, "---"):
			continue
		case strings.HasPrefix(line, "Benchmark"):
			if name, e, err := parseBenchLine(line); err != nil {
				fmt.Fprintf(os.Stderr, "benchjson: skipping %q: %v\n", line, err)
			} else {
				rep.Benchmarks[name] = e
			}
		default:
			// goos/goarch/pkg/cpu provenance lines.
			if k, v, ok := strings.Cut(line, ":"); ok && !strings.Contains(k, " ") {
				rep.Meta[k] = strings.TrimSpace(v)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: read: %v\n", err)
		os.Exit(1)
	}
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}

	// encoding/json sorts map keys, so two artifacts diff cleanly.
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if *out == "" {
		fmt.Println(string(data))
		return
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %s (%d benchmarks)\n", *out, len(rep.Benchmarks))
}

// parseBenchLine parses one "BenchmarkName-N  iters  v unit  v unit ..."
// result line.
func parseBenchLine(line string) (string, *entry, error) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return "", nil, fmt.Errorf("want 'name iters {value unit}...'")
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i] // strip the -GOMAXPROCS suffix
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return "", nil, fmt.Errorf("iterations: %w", err)
	}
	e := &entry{Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", nil, fmt.Errorf("value %q: %w", fields[i], err)
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			e.NsPerOp = v
		case "B/op":
			e.BytesPerOp = v
		case "allocs/op":
			e.AllocsPerOp = v
		default:
			if e.Metrics == nil {
				e.Metrics = map[string]float64{}
			}
			e.Metrics[unit] = v
		}
	}
	return name, e, nil
}
