// Command simcheck runs the repository's determinism-and-lock-discipline
// analyzers (see internal/analysis) over module packages and exits
// non-zero on any diagnostic. It is part of `make check` and CI.
//
// Usage:
//
//	go run ./cmd/simcheck ./...          # whole module
//	go run ./cmd/simcheck ./internal/mpi # one package
//	go run ./cmd/simcheck -list          # describe the analyzers
//
// Diagnostics print as file:line:col: message [rule]. Suppress a
// legitimate finding with an annotation on or above the line:
//
//	//simcheck:allow <rule> <reason>
//
// or, for whole files outside the simulation discipline:
//
//	//simcheck:allow-file <rule> <reason>
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"mpicontend/internal/analysis"
	"mpicontend/internal/analysis/all"
)

func main() {
	list := flag.Bool("list", false, "describe the analyzers and exit")
	flag.Parse()

	analyzers := all.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	modRoot, err := findModRoot()
	if err != nil {
		fatalf("cannot find go.mod above the working directory: %v", err)
	}
	loader, err := analysis.NewLoader(modRoot)
	if err != nil {
		fatalf("%v", err)
	}

	dirs, err := resolvePatterns(modRoot, flag.Args())
	if err != nil {
		fatalf("%v", err)
	}

	var diags []analysis.Diagnostic
	for _, rel := range dirs {
		importPath := loader.ModPath
		if rel != "." {
			importPath += "/" + filepath.ToSlash(rel)
		}
		pkgs, err := loader.LoadDir(filepath.Join(modRoot, rel), importPath)
		if err != nil {
			fatalf("loading %s: %v", importPath, err)
		}
		for _, pkg := range pkgs {
			d, err := analysis.Run(pkg, analyzers)
			if err != nil {
				fatalf("%v", err)
			}
			diags = append(diags, d...)
		}
	}
	analysis.SortDiagnostics(diags)

	for _, d := range diags {
		file := d.Pos.Filename
		if rel, err := filepath.Rel(modRoot, file); err == nil {
			file = rel
		}
		fmt.Printf("%s:%d:%d: %s [%s]\n", file, d.Pos.Line, d.Pos.Column, d.Message, d.Rule)
	}
	if n := len(diags); n > 0 {
		fmt.Fprintf(os.Stderr, "simcheck: %d diagnostic(s)\n", n)
		os.Exit(1)
	}
}

// resolvePatterns maps command-line package patterns onto module-relative
// directories. Supported: ./... (default), dir, dir/... .
func resolvePatterns(modRoot string, args []string) ([]string, error) {
	if len(args) == 0 {
		args = []string{"./..."}
	}
	allDirs, err := analysis.PackageDirs(modRoot)
	if err != nil {
		return nil, err
	}
	var out []string
	seen := map[string]bool{}
	add := func(d string) {
		if !seen[d] {
			seen[d] = true
			out = append(out, d)
		}
	}
	for _, arg := range args {
		recursive := false
		if rest, ok := strings.CutSuffix(arg, "/..."); ok {
			recursive = true
			arg = rest
		}
		arg = filepath.Clean(strings.TrimPrefix(arg, "./"))
		if arg == "" || arg == "." {
			if recursive {
				for _, d := range allDirs {
					add(d)
				}
				continue
			}
			add(".")
			continue
		}
		matched := false
		for _, d := range allDirs {
			if d == arg || (recursive && strings.HasPrefix(d, arg+string(filepath.Separator))) {
				add(d)
				matched = true
			}
		}
		if !matched {
			return nil, fmt.Errorf("pattern %q matches no packages", arg)
		}
	}
	return out, nil
}

// findModRoot walks up from the working directory to the go.mod root.
func findModRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", os.ErrNotExist
		}
		dir = parent
	}
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "simcheck: "+format+"\n", args...)
	os.Exit(1)
}
