// Command simcheck runs the repository's determinism-and-lock-discipline
// analyzers (see internal/analysis) over module packages and exits
// non-zero on any diagnostic. It is part of `make check` and CI.
//
// Usage:
//
//	go run ./cmd/simcheck ./...          # whole module
//	go run ./cmd/simcheck ./internal/mpi # one package
//	go run ./cmd/simcheck -list          # describe the analyzers
//	go run ./cmd/simcheck -json ./...    # diagnostics as a JSON array
//	go run ./cmd/simcheck -graph        # lock-order graph as Graphviz DOT
//
// The whole module is always loaded and its call graph built, whatever
// packages are requested, so the interprocedural analyzers (lockorder,
// hotalloc, the laundering passes) see every cross-package edge; the
// printed diagnostics are then filtered to the requested packages.
//
// Diagnostics print as file:line:col: message [rule]. Suppress a
// legitimate finding with an annotation on or above the line:
//
//	//simcheck:allow <rule> <reason>
//
// or, for whole files outside the simulation discipline:
//
//	//simcheck:allow-file <rule> <reason>
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"mpicontend/internal/analysis"
	"mpicontend/internal/analysis/all"
	"mpicontend/internal/analysis/lockorder"
)

func main() {
	list := flag.Bool("list", false, "describe the analyzers and exit")
	jsonOut := flag.Bool("json", false, "print diagnostics as a JSON array (stable order)")
	graphOut := flag.Bool("graph", false, "print the module lock-order graph as Graphviz DOT and exit")
	flag.Parse()

	analyzers := all.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	modRoot, err := findModRoot()
	if err != nil {
		fatalf("cannot find go.mod above the working directory: %v", err)
	}
	loader, err := analysis.NewLoader(modRoot)
	if err != nil {
		fatalf("%v", err)
	}

	requested, err := resolvePatterns(modRoot, flag.Args())
	if err != nil {
		fatalf("%v", err)
	}

	// Load every module package — the call graph must be complete even
	// when only a subset is requested.
	allDirs, err := analysis.PackageDirs(modRoot)
	if err != nil {
		fatalf("%v", err)
	}
	var pkgs []*analysis.Package
	for _, rel := range allDirs {
		importPath := loader.ModPath
		if rel != "." {
			importPath += "/" + filepath.ToSlash(rel)
		}
		loaded, err := loader.LoadDir(filepath.Join(modRoot, rel), importPath)
		if err != nil {
			fatalf("loading %s: %v", importPath, err)
		}
		pkgs = append(pkgs, loaded...)
	}

	if *graphOut {
		fmt.Print(lockorder.Dot(analysis.BuildGraph(pkgs)))
		return
	}

	diags, err := analysis.RunAll(pkgs, analyzers)
	if err != nil {
		fatalf("%v", err)
	}
	diags = filterDirs(modRoot, diags, requested)

	if *jsonOut {
		printJSON(modRoot, diags)
	} else {
		for _, d := range diags {
			fmt.Printf("%s:%d:%d: %s [%s]\n",
				relFile(modRoot, d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Message, d.Rule)
		}
	}
	if n := len(diags); n > 0 {
		fmt.Fprintf(os.Stderr, "simcheck: %d diagnostic(s)\n", n)
		os.Exit(1)
	}
}

// filterDirs keeps the diagnostics whose file sits in a requested
// module-relative directory.
func filterDirs(modRoot string, diags []analysis.Diagnostic, dirs []string) []analysis.Diagnostic {
	want := map[string]bool{}
	for _, d := range dirs {
		want[d] = true
	}
	out := diags[:0]
	for _, d := range diags {
		rel, err := filepath.Rel(modRoot, d.Pos.Filename)
		if err != nil {
			continue
		}
		if want[filepath.Dir(rel)] {
			out = append(out, d)
		}
	}
	return out
}

// relFile renders a diagnostic path relative to the module root.
func relFile(modRoot, file string) string {
	if rel, err := filepath.Rel(modRoot, file); err == nil {
		return rel
	}
	return file
}

// printJSON emits the diagnostics as a JSON array (never null), already
// in SortDiagnostics order, so identical inputs produce identical bytes.
func printJSON(modRoot string, diags []analysis.Diagnostic) {
	type jsonDiag struct {
		File    string `json:"file"`
		Line    int    `json:"line"`
		Col     int    `json:"col"`
		Rule    string `json:"rule"`
		Message string `json:"message"`
	}
	out := make([]jsonDiag, 0, len(diags))
	for _, d := range diags {
		out = append(out, jsonDiag{
			File:    filepath.ToSlash(relFile(modRoot, d.Pos.Filename)),
			Line:    d.Pos.Line,
			Col:     d.Pos.Column,
			Rule:    d.Rule,
			Message: d.Message,
		})
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fatalf("encoding JSON: %v", err)
	}
}

// resolvePatterns maps command-line package patterns onto module-relative
// directories. Supported: ./... (default), dir, dir/... .
func resolvePatterns(modRoot string, args []string) ([]string, error) {
	if len(args) == 0 {
		args = []string{"./..."}
	}
	allDirs, err := analysis.PackageDirs(modRoot)
	if err != nil {
		return nil, err
	}
	var out []string
	seen := map[string]bool{}
	add := func(d string) {
		if !seen[d] {
			seen[d] = true
			out = append(out, d)
		}
	}
	for _, arg := range args {
		recursive := false
		if rest, ok := strings.CutSuffix(arg, "/..."); ok {
			recursive = true
			arg = rest
		}
		arg = filepath.Clean(strings.TrimPrefix(arg, "./"))
		if arg == "" || arg == "." {
			if recursive {
				for _, d := range allDirs {
					add(d)
				}
				continue
			}
			add(".")
			continue
		}
		matched := false
		for _, d := range allDirs {
			if d == arg || (recursive && strings.HasPrefix(d, arg+string(filepath.Separator))) {
				add(d)
				matched = true
			}
		}
		if !matched {
			return nil, fmt.Errorf("pattern %q matches no packages", arg)
		}
	}
	return out, nil
}

// findModRoot walks up from the working directory to the go.mod root.
func findModRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", os.ErrNotExist
		}
		dir = parent
	}
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "simcheck: "+format+"\n", args...)
	os.Exit(1)
}
