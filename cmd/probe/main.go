// Command probe times each registered experiment in Quick mode — a harness
// health check used during development.
package main

//simcheck:allow-file nodeterm harness wall-clock timing of real runs; simulation state is seeded inside experiments

import (
	"fmt"
	"time"

	"mpicontend/internal/experiments"
)

func main() {
	total := time.Now()
	for _, id := range experiments.IDs() {
		e, _ := experiments.Get(id)
		start := time.Now()
		_, err := e.Run(experiments.Options{Quick: true})
		fmt.Printf("%-24s %6.1fs err=%v\n", id, time.Since(start).Seconds(), err)
	}
	fmt.Printf("TOTAL %.1fs\n", time.Since(total).Seconds())
}
