// Command lockbench exercises the real (non-simulated) lock
// implementations from package locks on actual goroutines: aggregate
// throughput and per-goroutine fairness under contention, in the spirit of
// the paper's microbenchmarks (with the caveat that the Go scheduler, not
// NUMA hardware, arbitrates here; see DESIGN.md).
//
// Usage:
//
//	lockbench -goroutines 8 -duration 500ms
package main

// This binary deliberately runs real goroutines against wall-clock
// measurement windows: it benchmarks the real-threads lock library, not
// the simulation.
//
//simcheck:allow-file nodeterm real-threads benchmark measures wall-clock windows

import (
	"flag"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"mpicontend/locks"
)

type result struct {
	name   string
	total  int64
	spread float64 // max/min per-goroutine acquisitions
}

func bench(name string, goroutines int, d time.Duration, lock, unlock func()) result {
	var stop atomic.Bool
	counts := make([]int64, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		g := g
		go func() {
			defer wg.Done()
			for !stop.Load() {
				lock()
				counts[g]++
				unlock()
			}
		}()
	}
	time.Sleep(d)
	stop.Store(true)
	wg.Wait()
	var total, min, max int64
	min = 1 << 62
	for _, c := range counts {
		total += c
		if c < min {
			min = c
		}
		if c > max {
			max = c
		}
	}
	spread := float64(max)
	if min > 0 {
		spread = float64(max) / float64(min)
	}
	return result{name: name, total: total, spread: spread}
}

func main() {
	goroutines := flag.Int("goroutines", 8, "contending goroutines")
	duration := flag.Duration("duration", 300*time.Millisecond, "measurement window")
	flag.Parse()

	var mu sync.Mutex
	var tk locks.Ticket
	var ts locks.TAS
	var tt locks.TTAS
	var pr locks.Priority
	var mcs locks.MCS

	results := []result{
		bench("sync.Mutex", *goroutines, *duration, mu.Lock, mu.Unlock),
		bench("Ticket", *goroutines, *duration, tk.Lock, tk.Unlock),
		bench("TAS", *goroutines, *duration, ts.Lock, ts.Unlock),
		bench("TTAS", *goroutines, *duration, tt.Lock, tt.Unlock),
		bench("Priority(high)", *goroutines, *duration, pr.LockHigh, pr.UnlockHigh),
	}
	// MCS needs a per-goroutine node.
	{
		var stop atomic.Bool
		counts := make([]int64, *goroutines)
		var wg sync.WaitGroup
		for g := 0; g < *goroutines; g++ {
			wg.Add(1)
			g := g
			go func() {
				defer wg.Done()
				var n locks.MCSNode
				for !stop.Load() {
					mcs.Acquire(&n)
					counts[g]++
					mcs.Release(&n)
				}
			}()
		}
		time.Sleep(*duration)
		stop.Store(true)
		wg.Wait()
		var total, min, max int64
		min = 1 << 62
		for _, c := range counts {
			total += c
			if c < min {
				min = c
			}
			if c > max {
				max = c
			}
		}
		spread := float64(max)
		if min > 0 {
			spread = float64(max) / float64(min)
		}
		results = append(results, result{name: "MCS", total: total, spread: spread})
	}

	sort.Slice(results, func(i, j int) bool { return results[i].total > results[j].total })
	fmt.Printf("%d goroutines, %v window\n", *goroutines, *duration)
	fmt.Printf("%-16s %14s %18s\n", "lock", "acquisitions", "fairness max/min")
	for _, r := range results {
		fmt.Printf("%-16s %14d %18.2f\n", r.name, r.total, r.spread)
	}
	fmt.Println("\nnote: FIFO locks (Ticket, MCS) should show max/min near 1;")
	fmt.Println("TAS/TTAS and sync.Mutex may show large spreads under contention.")
}
