// RMA example: one-sided Put/Get/Accumulate with an asynchronous progress
// thread on every process — the paper's most dramatic case (§6.1.2,
// Fig. 9): the progress thread monopolizes a mutex-guarded runtime, and
// fair arbitration recovers up to ~5x.
//
//	go run ./examples/rmaprogress
package main

import (
	"fmt"
	"log"

	"mpicontend/mpisim"
)

func main() {
	fmt.Println("One-sided transfers with async progress threads, 8 processes")
	fmt.Println()
	for _, op := range []mpisim.RMAOp{mpisim.Put, mpisim.Get, mpisim.Accumulate} {
		opName := map[mpisim.RMAOp]string{
			mpisim.Put: "Put", mpisim.Get: "Get", mpisim.Accumulate: "Accumulate",
		}[op]
		var mutexRate float64
		for _, lock := range []mpisim.Lock{mpisim.Mutex, mpisim.Ticket, mpisim.Priority} {
			r, err := mpisim.RMA(mpisim.RMAConfig{
				Lock: lock, Op: op, ElemBytes: 512, Ops: 12,
			})
			if err != nil {
				log.Fatal(err)
			}
			note := ""
			if lock == mpisim.Mutex {
				mutexRate = r.RateElemPerSec
			} else if mutexRate > 0 {
				note = fmt.Sprintf("  (%.1fx vs mutex)", r.RateElemPerSec/mutexRate)
			}
			fmt.Printf("%-12s %-10s %12.0f elements/s%s\n", opName, lock, r.RateElemPerSec, note)
		}
		fmt.Println()
	}
	fmt.Println("The async progress thread spends its life polling inside the")
	fmt.Println("runtime; under a mutex it keeps re-acquiring the lock it just")
	fmt.Println("released, starving the application thread's operations.")
}
