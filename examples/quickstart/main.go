// Quickstart: measure how critical-section arbitration changes
// multithreaded MPI throughput, reproducing the headline comparison of
// "MPI+Threads: Runtime Contention and Remedies" (PPoPP'15) in a few
// seconds on a laptop.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"mpicontend/mpisim"
)

func main() {
	fmt.Println("Multithreaded point-to-point throughput, 8 threads, 64B messages")
	fmt.Println("(two simulated dual-socket Nehalem nodes over QDR InfiniBand)")
	fmt.Println()

	single, err := mpisim.Throughput(mpisim.ThroughputConfig{
		Lock: mpisim.Single, Threads: 1, MsgBytes: 64,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-22s %10.0f msgs/s   (MPI_THREAD_SINGLE baseline)\n",
		"single-threaded", single.RateMsgsPerSec)

	for _, lock := range []mpisim.Lock{mpisim.Mutex, mpisim.Ticket, mpisim.Priority} {
		r, err := mpisim.Throughput(mpisim.ThroughputConfig{
			Lock: lock, Threads: 8, MsgBytes: 64, Trace: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s %10.0f msgs/s   bias core=%.1f sock=%.1f dangling=%.0f\n",
			"8 threads / "+lock.String(), r.RateMsgsPerSec,
			r.BiasCore, r.BiasSocket, r.DanglingAvg)
	}

	fmt.Println()
	fmt.Println("The pthread-mutex runtime loses throughput to NUMA-biased lock")
	fmt.Println("monopolization (bias factors >> 1, dangling requests pile up);")
	fmt.Println("the paper's FCFS ticket lock and two-level priority lock recover it.")
}
