// Genome assembly example: assemble synthetic reads with the SWAP-style
// distributed assembler and compare runtimes across lock arbitrations
// (paper §6.3, Fig. 12b). The speedup requires no change to the
// application — only to the runtime's critical-section arbitration.
//
//	go run ./examples/genomeassembly
package main

import (
	"fmt"
	"log"

	"mpicontend/mpisim"
)

func main() {
	fmt.Println("SWAP-style genome assembly: 8 processes x 2 threads")
	fmt.Println("(sender + receiver threads with blocking MPI_Send/MPI_Recv)")
	fmt.Println()

	var mutexNs int64
	for _, lock := range []mpisim.Lock{mpisim.Mutex, mpisim.Ticket, mpisim.Priority} {
		r, err := mpisim.Assembly(mpisim.AssemblyConfig{
			Lock: lock, Procs: 8, GenomeLen: 12000, Reads: 2400,
		})
		if err != nil {
			log.Fatal(err)
		}
		speedup := ""
		if lock == mpisim.Mutex {
			mutexNs = r.SimNs
		} else if mutexNs > 0 {
			speedup = fmt.Sprintf("  (%.2fx vs mutex)", float64(mutexNs)/float64(r.SimNs))
		}
		fmt.Printf("%-10s time=%8.2f ms   contigs=%4d  bases=%6d  N50=%4d%s\n",
			lock, float64(r.SimNs)/1e6, r.Contigs, r.ContigBases, r.N50, speedup)
	}

	fmt.Println()
	fmt.Println("The paper reports ~2x end-to-end speedup from replacing the mutex")
	fmt.Println("with fair arbitration, with no application or hardware changes.")
}
