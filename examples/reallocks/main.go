// Real-locks example: contend the paper's lock algorithms — implemented
// with sync/atomic in package locks — on actual goroutines, and watch the
// fairness difference the paper measures show up in plain Go: sync.Mutex
// (Go's futex-like baseline) spreads acquisitions unevenly, while the
// ticket lock's FCFS keeps every goroutine within a whisker of the mean.
//
//	go run ./examples/reallocks
package main

// This example deliberately runs real goroutines against wall-clock
// measurement windows: it demonstrates the real-threads lock library, not
// the simulation.
//
//simcheck:allow-file nodeterm real-threads demo measures wall-clock windows
//simcheck:allow-file nogoroutine real-threads demo contends actual goroutines

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"mpicontend/locks"
)

const (
	goroutines = 8
	window     = 400 * time.Millisecond
)

func contend(name string, lock, unlock func()) {
	var stop atomic.Bool
	counts := make([]int64, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		g := g
		go func() {
			defer wg.Done()
			for !stop.Load() {
				lock()
				counts[g]++
				unlock()
			}
		}()
	}
	time.Sleep(window)
	stop.Store(true)
	wg.Wait()

	var total, min, max int64
	min = 1 << 62
	for _, c := range counts {
		total += c
		if c < min {
			min = c
		}
		if c > max {
			max = c
		}
	}
	unfairness := float64(max) / float64(min)
	fmt.Printf("%-14s %12d acquisitions   max/min = %.2f\n", name, total, unfairness)
}

func main() {
	fmt.Printf("%d goroutines hammering each lock for %v\n\n", goroutines, window)

	var mu sync.Mutex
	contend("sync.Mutex", mu.Lock, mu.Unlock)

	var tk locks.Ticket
	contend("Ticket", tk.Lock, tk.Unlock)

	var pr locks.Priority
	contend("Priority", pr.LockHigh, pr.UnlockHigh)

	var tt locks.TTAS
	contend("TTAS", tt.Lock, tt.Unlock)

	fmt.Println()
	fmt.Println("FCFS locks trade raw throughput for fairness — the same trade")
	fmt.Println("the paper's MPI runtime exploits to stop lock monopolization.")
	fmt.Println("(The NUMA bias itself needs pinned threads; see the simulator.)")
}
