// Stencil example: solve a 3-D heat equation with the hybrid MPI+threads
// stencil kernel and show how lock arbitration affects small problems
// (paper §6.2.2, Fig. 11).
//
//	go run ./examples/stencil
package main

import (
	"fmt"
	"log"

	"mpicontend/mpisim"
)

func main() {
	fmt.Println("3D 7-point stencil, 4 simulated nodes x 8 threads")
	fmt.Println()
	fmt.Printf("%-10s %-10s %10s %8s %8s %8s\n",
		"grid", "lock", "GFlops", "MPI%", "comp%", "sync%")
	for _, edge := range []int{16, 32, 64} {
		for _, lock := range []mpisim.Lock{mpisim.Mutex, mpisim.Ticket, mpisim.Priority} {
			r, err := mpisim.Stencil(mpisim.StencilConfig{
				Lock: lock, Procs: 4, Threads: 8,
				NX: edge, NY: edge, NZ: edge, Iters: 4,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-10s %-10s %10.3f %8.1f %8.1f %8.1f\n",
				fmt.Sprintf("%d^3", edge), lock, r.GFlops,
				r.MPIPct, r.ComputePct, r.SyncPct)
		}
	}
	fmt.Println()
	fmt.Println("Fair arbitration pays off while communication dominates (small")
	fmt.Println("grids); once computation dominates, the methods converge — the")
	fmt.Println("shape of the paper's Fig. 11.")
}
