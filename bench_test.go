// Package mpicontend's repository-level benchmarks regenerate each table
// and figure of "MPI+Threads: Runtime Contention and Remedies" (PPoPP'15)
// in reduced (Quick) form, one benchmark per experiment, and report the
// figure's headline metric via b.ReportMetric. Run the full-size sweeps
// with cmd/mpistorm.
package mpicontend

import (
	"testing"

	"mpicontend/internal/experiments"
	"mpicontend/internal/fault"
	"mpicontend/internal/machine"
	"mpicontend/internal/mpi"
	"mpicontend/internal/mpi/vci"
	"mpicontend/internal/report"
	"mpicontend/internal/simlock"
	"mpicontend/internal/telemetry"
	"mpicontend/internal/workloads"
	"mpicontend/mpisim"
)

// benchExperiment runs one registry experiment per iteration and reports
// the mean y of the named series as the benchmark metric.
func benchExperiment(b *testing.B, id, series, unit string) {
	b.Helper()
	e, err := experiments.Get(id)
	if err != nil {
		b.Fatal(err)
	}
	var last float64
	for i := 0; i < b.N; i++ {
		tables, err := e.Run(experiments.Options{Quick: true})
		if err != nil {
			b.Fatal(err)
		}
		last = meanSeries(b, tables, series)
	}
	b.ReportMetric(last, unit)
}

func meanSeries(b *testing.B, tables []*report.Table, name string) float64 {
	b.Helper()
	for _, t := range tables {
		for _, s := range t.Series {
			if s.Name == name {
				if len(s.Points) == 0 {
					b.Fatalf("series %q empty", name)
				}
				sum := 0.0
				for _, p := range s.Points {
					sum += p.Y
				}
				return sum / float64(len(s.Points))
			}
		}
	}
	b.Fatalf("series %q not found", name)
	return 0
}

// --- Microbenchmark figures ---

func BenchmarkFig2aThroughputMutex(b *testing.B) {
	benchExperiment(b, "fig2a", "8 tpn", "kmsgs/s")
}

func BenchmarkFig2bNUMABinding(b *testing.B) {
	benchExperiment(b, "fig2b", "scatter", "kmsgs/s")
}

func BenchmarkFig3aBiasFactors(b *testing.B) {
	benchExperiment(b, "fig3a", "Core Level", "bias")
}

func BenchmarkFig3cDangling(b *testing.B) {
	benchExperiment(b, "fig3c", "Mutex", "danglingreqs")
}

func BenchmarkFig5aDanglingTicket(b *testing.B) {
	benchExperiment(b, "fig5a", "Ticket", "danglingreqs")
}

func BenchmarkFig5bBindingLocks(b *testing.B) {
	benchExperiment(b, "fig5b", "Ticket_compact", "kmsgs/s")
}

func BenchmarkFig5cPerSocket(b *testing.B) {
	benchExperiment(b, "fig5c", "Ticket", "kmsgs/s")
}

func BenchmarkFig6bN2N(b *testing.B) {
	benchExperiment(b, "fig6b", "Priority", "kmsgs/s")
}

func BenchmarkFig8aThroughputAll(b *testing.B) {
	benchExperiment(b, "fig8a", "Ticket", "kmsgs/s")
}

func BenchmarkFig8bLatency(b *testing.B) {
	benchExperiment(b, "fig8b", "Ticket", "us")
}

func BenchmarkFig9RMAPut(b *testing.B) {
	benchExperiment(b, "fig9a", "Ticket", "kelems/s")
}

func BenchmarkFig9RMAGet(b *testing.B) {
	benchExperiment(b, "fig9b", "Ticket", "kelems/s")
}

func BenchmarkFig9RMAAcc(b *testing.B) {
	benchExperiment(b, "fig9c", "Ticket", "kelems/s")
}

// --- Kernel and application figures ---

func BenchmarkFig10aBFSSingleNode(b *testing.B) {
	benchExperiment(b, "fig10a", "BFS", "MTEPS")
}

func BenchmarkFig10bBFSThreadScaling(b *testing.B) {
	benchExperiment(b, "fig10b", "Ticket", "MTEPS")
}

func BenchmarkFig10cBFSWeakScaling(b *testing.B) {
	benchExperiment(b, "fig10c", "Ticket", "MTEPS")
}

func BenchmarkFig11aStencil(b *testing.B) {
	benchExperiment(b, "fig11a", "Ticket", "GFlops")
}

func BenchmarkFig11bStencilBreakdown(b *testing.B) {
	benchExperiment(b, "fig11b", "Computation", "pct")
}

func BenchmarkFig12bGenome(b *testing.B) {
	benchExperiment(b, "fig12b", "Ticket", "s")
}

// --- Ablations (DESIGN.md design-choice studies) ---

func BenchmarkAblationFutexSpinCount(b *testing.B) {
	benchExperiment(b, "ablation-spin", "Mutex", "kmsgs/s")
}

func BenchmarkAblationPriorityVsThreeMutex(b *testing.B) {
	benchExperiment(b, "ablation-priomutex", "PrioMutex", "kmsgs/s")
}

func BenchmarkAblationSocketAwarePriority(b *testing.B) {
	benchExperiment(b, "ablation-socketprio", "SocketPriority", "kmsgs/s")
}

func BenchmarkAblationMCS(b *testing.B) {
	benchExperiment(b, "ablation-queuelocks", "MCS", "kmsgs/s")
}

// --- Direct workload benchmarks (single configuration per op) ---

func benchThroughput(b *testing.B, kind simlock.Kind, threads int) {
	var rate float64
	for i := 0; i < b.N; i++ {
		r, err := workloads.Throughput(workloads.ThroughputParams{
			Lock: kind, Threads: threads, MsgBytes: 64, Windows: 4,
			TraceRank: -1, Binding: machine.Compact,
		})
		if err != nil {
			b.Fatal(err)
		}
		rate = r.RateMsgsPerSec
	}
	b.ReportMetric(rate, "msgs/s")
}

func BenchmarkThroughputMutex8(b *testing.B)    { benchThroughput(b, simlock.KindMutex, 8) }
func BenchmarkThroughputTicket8(b *testing.B)   { benchThroughput(b, simlock.KindTicket, 8) }
func BenchmarkThroughputPriority8(b *testing.B) { benchThroughput(b, simlock.KindPriority, 8) }
func BenchmarkThroughputSingle(b *testing.B)    { benchThroughput(b, simlock.KindNone, 1) }

// BenchmarkSimulatorEventRate measures raw simulator performance: events
// dispatched per second of wall time while running the throughput
// benchmark (a harness health metric, not a paper figure).
func BenchmarkSimulatorEventRate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := mpisim.Throughput(mpisim.ThroughputConfig{
			Lock: mpisim.Ticket, Threads: 8, MsgBytes: 64, Windows: 4,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSuitePatterns(b *testing.B) {
	benchExperiment(b, "suite-patterns", "Ticket", "kmsgs/s")
}

func BenchmarkAblationGranularity(b *testing.B) {
	benchExperiment(b, "ablation-granularity", "Ticket", "kmsgs/s")
}

func BenchmarkAblationSelectiveWakeup(b *testing.B) {
	benchExperiment(b, "ablation-wakeup", "Mutex_rmaput", "kelems/s")
}

func BenchmarkAblationCohort(b *testing.B) {
	benchExperiment(b, "ablation-socketprio", "Cohort", "kmsgs/s")
}

// BenchmarkChaosSoak measures goodput under the 1% packet-drop fault
// scenario per lock: how much of the fault-free message rate each
// arbitration method retains while the resilient transport retransmits
// around the losses.
func benchChaos(b *testing.B, kind simlock.Kind) {
	var rate float64
	for i := 0; i < b.N; i++ {
		r, err := workloads.Throughput(workloads.ThroughputParams{
			Lock: kind, Threads: 8, MsgBytes: 512, Window: 32, Windows: 4,
			TraceRank: -1, Binding: machine.Compact,
			Fault: fault.Config{DropProb: 0.01, WatchdogNs: 50_000_000},
		})
		if err != nil {
			b.Fatal(err)
		}
		rate = r.RateMsgsPerSec
	}
	b.ReportMetric(rate, "msgs/s")
}

func BenchmarkChaosSoakMutex(b *testing.B)    { benchChaos(b, simlock.KindMutex) }
func BenchmarkChaosSoakTicket(b *testing.B)   { benchChaos(b, simlock.KindTicket) }
func BenchmarkChaosSoakPriority(b *testing.B) { benchChaos(b, simlock.KindPriority) }
func BenchmarkChaosSoakMCS(b *testing.B)      { benchChaos(b, simlock.KindMCS) }

// --- Per-VCI runtime scaling ---

// benchVCI streams the N2N benchmark over the sharded runtime at the
// given VCI count (one explicitly placed communicator per thread) and
// reports the message rate: the 1/4/16/64 progression is the vci
// experiment's fine-grained-resources crossover in benchmark form, under
// the lock kind the sharding is supposed to make irrelevant.
func benchVCI(b *testing.B, vcis int) {
	var rate float64
	for i := 0; i < b.N; i++ {
		r, err := workloads.N2N(workloads.N2NParams{
			Lock: simlock.KindMutex, Procs: 4, Threads: 8, MsgBytes: 2048,
			Windows: 4, PerThreadTags: true,
			VCIs: vcis, VCIPolicy: vci.Explicit,
		})
		if err != nil {
			b.Fatal(err)
		}
		rate = r.RateMsgsPerSec
	}
	b.ReportMetric(rate, "msgs/s")
}

func BenchmarkVCIScaling1(b *testing.B)  { benchVCI(b, 1) }
func BenchmarkVCIScaling4(b *testing.B)  { benchVCI(b, 4) }
func BenchmarkVCIScaling16(b *testing.B) { benchVCI(b, 16) }
func BenchmarkVCIScaling64(b *testing.B) { benchVCI(b, 64) }

// --- Progress modes ---

// benchProgressMode streams the N2N benchmark (the progress experiment's
// 1-VCI mutex point) under the given progress mode and reports the
// message rate: polling is the paper's poll-from-Wait baseline, strong
// moves the progress loop onto per-shard daemons, and continuation
// replaces the Waitall polling with completion-queue draining.
func benchProgressMode(b *testing.B, m mpi.ProgressMode) {
	var rate float64
	for i := 0; i < b.N; i++ {
		r, err := workloads.N2N(workloads.N2NParams{
			Lock: simlock.KindMutex, Procs: 4, Threads: 8, MsgBytes: 2048,
			Windows: 4, PerThreadTags: true,
			VCIs: 1, VCIPolicy: vci.Explicit, Progress: m,
		})
		if err != nil {
			b.Fatal(err)
		}
		rate = r.RateMsgsPerSec
	}
	b.ReportMetric(rate, "msgs/s")
}

func BenchmarkProgressModePolling(b *testing.B)      { benchProgressMode(b, mpi.ProgressPolling) }
func BenchmarkProgressModeStrong(b *testing.B)       { benchProgressMode(b, mpi.ProgressStrong) }
func BenchmarkProgressModeContinuation(b *testing.B) { benchProgressMode(b, mpi.ProgressContinuation) }

// --- Rank-failure recovery ---

// benchRecovery runs the fault-tolerant workload through a mid-run rank
// crash and reports the heartbeat detection latency — the time from the
// fail-stop to the first survivor declaring the rank dead. The sim time
// is deterministic; the benchmark's wall time tracks how expensive the
// error path (revoke flood, shrink consensus, redistribution) is to
// simulate under each arbitration method.
func benchRecovery(b *testing.B, kind simlock.Kind, strat workloads.RecoveryStrategy) {
	var detect float64
	for i := 0; i < b.N; i++ {
		r, err := workloads.Recovery(workloads.RecoveryParams{
			Lock: kind, Procs: 4, ProcsPerNode: 2, Iters: 24, Strategy: strat,
			Fault: fault.Config{Crashes: []fault.CrashSpec{{Rank: 2, AtNs: 60_000}}},
		})
		if err != nil {
			b.Fatal(err)
		}
		detect = float64(r.Recovery.DetectNs)
	}
	b.ReportMetric(detect, "detect-ns")
}

func BenchmarkRecoveryDetectMutex(b *testing.B) {
	benchRecovery(b, simlock.KindMutex, workloads.RecoverShrink)
}
func BenchmarkRecoveryDetectTicket(b *testing.B) {
	benchRecovery(b, simlock.KindTicket, workloads.RecoverShrink)
}
func BenchmarkRecoveryCheckpointMutex(b *testing.B) {
	benchRecovery(b, simlock.KindMutex, workloads.RecoverCheckpoint)
}

// --- Telemetry overhead ---

// benchTelemetry runs the fig8a-shaped contended throughput point with or
// without the telemetry plane attached. Comparing the Disabled variant
// against a pre-telemetry baseline (or against Enabled) quantifies the
// cost of the nil-check hook sites on the hot path; the disabled path
// must stay within noise (≤2%) of the untouched runtime.
func benchTelemetry(b *testing.B, enabled bool) {
	var rate float64
	for i := 0; i < b.N; i++ {
		var rec *telemetry.Recorder
		if enabled {
			rec = telemetry.New()
		}
		r, err := workloads.Throughput(workloads.ThroughputParams{
			Lock: simlock.KindMutex, Threads: 8, MsgBytes: 64,
			Window: 32, Windows: 4, TraceRank: -1, Tel: rec,
		})
		if err != nil {
			b.Fatal(err)
		}
		rate = r.RateMsgsPerSec
	}
	b.ReportMetric(rate, "msgs/s")
}

func BenchmarkTelemetryDisabled(b *testing.B) { benchTelemetry(b, false) }
func BenchmarkTelemetryEnabled(b *testing.B)  { benchTelemetry(b, true) }

// --- Parallel sweep speedup ---

// benchSweepJobs regenerates a fixed bundle of experiments through the
// parallel sweep at the given worker count; comparing Serial against
// Jobs4/Jobs8 on a multicore machine measures the orchestrator's
// wall-clock speedup (on 4+ cores, Jobs4 should run at least ~2x faster
// than Serial). Output equality across worker counts is asserted by
// TestSweepMatchesSerial and `make parity`; these benchmarks measure only
// time.
func benchSweepJobs(b *testing.B, jobs int) {
	ids := []string{"fig2a", "fig5b", "fig8a", "suite-patterns", "ablation-queuelocks"}
	for i := 0; i < b.N; i++ {
		if _, err := mpisim.Sweep(mpisim.SweepConfig{
			IDs: ids, Quick: true, Jobs: jobs,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSweepSerial(b *testing.B) { benchSweepJobs(b, 1) }
func BenchmarkSweepJobs4(b *testing.B)  { benchSweepJobs(b, 4) }
func BenchmarkSweepJobs8(b *testing.B)  { benchSweepJobs(b, 8) }
