package locks

import (
	"sync"
	"testing"
)

// TestCLHMutualExclusion storms the CLH lock with node recycling: each
// goroutine reuses the predecessor node Release hands back, as the CLH
// protocol prescribes. Run under -race, any exclusion bug loses
// increments or trips the detector.
func TestCLHMutualExclusion(t *testing.T) {
	const goroutines, iters = 8, 2000
	l := NewCLH()
	counter := 0
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			n := &CLHNode{}
			for i := 0; i < iters; i++ {
				l.Acquire(n)
				counter++
				n = l.Release(n)
			}
		}()
	}
	wg.Wait()
	if counter != goroutines*iters {
		t.Fatalf("counter = %d, want %d", counter, goroutines*iters)
	}
}

// TestCLHGoroutineChurn recreates contenders in waves, so the queue keeps
// absorbing goroutines that have never held the lock and retiring ones
// that just did — the node hand-off must survive the churn.
func TestCLHGoroutineChurn(t *testing.T) {
	const waves, perWave, iters = 20, 6, 50
	l := NewCLH()
	counter := 0
	for w := 0; w < waves; w++ {
		var wg sync.WaitGroup
		for g := 0; g < perWave; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				n := &CLHNode{}
				for i := 0; i < iters; i++ {
					l.Acquire(n)
					counter++
					n = l.Release(n)
				}
			}()
		}
		wg.Wait()
	}
	if counter != waves*perWave*iters {
		t.Fatalf("counter = %d, want %d", counter, waves*perWave*iters)
	}
}

// TestCLHHandoffFairness is the FCFS smoke test: with every contender
// pinned in the queue, no goroutine should be starved outright. The Go
// scheduler is not NUMA hardware, so the bound is loose — each contender
// must complete its share, and under FCFS hand-off every acquisition
// count is exact by construction (the test asserts totals, then checks
// no goroutine got locked out: min > 0).
func TestCLHHandoffFairness(t *testing.T) {
	const goroutines, iters = 4, 500
	l := NewCLH()
	counts := make([]int, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		g := g
		go func() {
			defer wg.Done()
			n := &CLHNode{}
			for i := 0; i < iters; i++ {
				l.Acquire(n)
				counts[g]++
				n = l.Release(n)
			}
		}()
	}
	wg.Wait()
	for g, c := range counts {
		if c != iters {
			t.Errorf("goroutine %d made %d acquisitions, want %d", g, c, iters)
		}
	}
}

// TestCLHUncontended checks the fast path: a single node cycling through
// acquire/release must keep returning a usable recycled node.
func TestCLHUncontended(t *testing.T) {
	l := NewCLH()
	n := &CLHNode{}
	for i := 0; i < 100; i++ {
		l.Acquire(n)
		n = l.Release(n)
		if n == nil {
			t.Fatal("Release returned nil recycled node")
		}
	}
}
