package locks

import "sync/atomic"

// CLH is the Craig–Landin–Hagersten queue lock: FCFS like MCS, but each
// waiter spins on its *predecessor's* node rather than its own, which
// suits cache-coherent machines. Acquire returns a token to pass to
// Release; the token must not be reused until Release returns.
type CLH struct {
	tail atomic.Pointer[CLHNode]
}

// CLHNode is one waiter's queue node.
type CLHNode struct {
	locked atomic.Bool
	pred   *CLHNode
}

// NewCLH returns a CLH lock, installing the initial released node.
func NewCLH() *CLH {
	l := &CLH{}
	n := &CLHNode{}
	l.tail.Store(n)
	return l
}

// Acquire enqueues n and spins until the predecessor releases.
func (l *CLH) Acquire(n *CLHNode) {
	n.locked.Store(true)
	pred := l.tail.Swap(n)
	n.pred = pred
	for i := 0; pred.locked.Load(); i++ {
		spinYield(i)
	}
}

// Release frees the lock; n's predecessor node becomes the caller's node
// for the next Acquire (standard CLH node recycling is left to the caller:
// reuse the returned node).
func (l *CLH) Release(n *CLHNode) *CLHNode {
	pred := n.pred
	n.pred = nil
	n.locked.Store(false)
	return pred
}
