package locks

import (
	"sync"
	"sync/atomic"
	"testing"
)

// locker abstracts the flat lock types for shared tests.
type locker interface {
	Lock()
	Unlock()
}

func flatLocks() map[string]func() locker {
	return map[string]func() locker{
		"Ticket":   func() locker { return &Ticket{} },
		"TAS":      func() locker { return &TAS{} },
		"TTAS":     func() locker { return &TTAS{} },
		"Priority": func() locker { return &Priority{} },
	}
}

// TestMutualExclusion hammers each lock with goroutines incrementing a
// plain counter; any exclusion bug loses increments.
func TestMutualExclusion(t *testing.T) {
	const goroutines, iters = 8, 2000
	for name, mk := range flatLocks() {
		name, mk := name, mk
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			l := mk()
			counter := 0
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < iters; i++ {
						l.Lock()
						counter++
						l.Unlock()
					}
				}()
			}
			wg.Wait()
			if counter != goroutines*iters {
				t.Fatalf("counter = %d, want %d", counter, goroutines*iters)
			}
		})
	}
}

func TestMCSMutualExclusion(t *testing.T) {
	const goroutines, iters = 8, 2000
	var m MCS
	counter := 0
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var n MCSNode
			for i := 0; i < iters; i++ {
				m.Acquire(&n)
				counter++
				m.Release(&n)
			}
		}()
	}
	wg.Wait()
	if counter != goroutines*iters {
		t.Fatalf("counter = %d, want %d", counter, goroutines*iters)
	}
}

// TestTicketFIFOOrder verifies strict FIFO service order when tickets are
// taken in a known order (single goroutine takes tickets; helpers serve).
func TestTicketFIFOOrder(t *testing.T) {
	var tk Ticket
	tk.Lock() // hold so later lockers queue
	const waiters = 6
	order := make(chan int, waiters)
	var started sync.WaitGroup
	for i := 0; i < waiters; i++ {
		started.Add(1)
		i := i
		// Serialize ticket issuance so the expected order is known.
		done := make(chan struct{})
		go func() {
			my := tk.next.Add(1) - 1 // take ticket i+1 deterministically
			started.Done()
			for tk.serving.Load() != my {
			}
			order <- i
			tk.Unlock()
			close(done)
		}()
		started.Wait()
		_ = done
	}
	tk.Unlock()
	for i := 0; i < waiters; i++ {
		if got := <-order; got != i {
			t.Fatalf("service order[%d] = %d", i, got)
		}
	}
}

func TestTicketHasWaiters(t *testing.T) {
	var tk Ticket
	tk.Lock()
	if tk.HasWaiters() {
		t.Fatal("no waiters expected")
	}
	acquired := make(chan struct{})
	go func() {
		tk.Lock()
		close(acquired)
		tk.Unlock()
	}()
	for !tk.HasWaiters() {
	}
	tk.Unlock()
	<-acquired
}

// TestPriorityHighOvertakesLow: with the lock held and both a high and a
// low waiter queued, the high waiter must get it first.
func TestPriorityHighOvertakesLow(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		var p Priority
		p.LockHigh()

		var order []string
		var mu sync.Mutex
		var wg sync.WaitGroup
		lowQueued := make(chan struct{})
		wg.Add(2)
		go func() {
			defer wg.Done()
			p.l.Lock() // queue on the low path deterministically
			close(lowQueued)
			p.b.Lock()
			mu.Lock()
			order = append(order, "low")
			mu.Unlock()
			p.UnlockLow()
		}()
		<-lowQueued
		highQueued := make(chan struct{})
		go func() {
			defer wg.Done()
			my := p.h.next.Add(1) - 1
			close(highQueued)
			for p.h.serving.Load() != my {
			}
			if !p.alreadyBlocked.Load() {
				p.b.Lock()
				p.alreadyBlocked.Store(true)
			}
			mu.Lock()
			order = append(order, "high")
			mu.Unlock()
			p.UnlockHigh()
		}()
		<-highQueued
		p.UnlockHigh()
		wg.Wait()
		if order[0] != "high" {
			t.Fatalf("trial %d: order = %v, want high first", trial, order)
		}
	}
}

// TestPriorityLowRunsWhenIdle: low acquisitions proceed without high
// traffic.
func TestPriorityLowRunsWhenIdle(t *testing.T) {
	var p Priority
	done := make(chan struct{})
	go func() {
		for i := 0; i < 100; i++ {
			p.LockLow()
			p.UnlockLow()
		}
		close(done)
	}()
	<-done
}

// TestPriorityMixedClasses stresses concurrent high and low users.
func TestPriorityMixedClasses(t *testing.T) {
	var p Priority
	var counter atomic.Int64
	shared := 0
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(2)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				p.LockHigh()
				shared++
				p.UnlockHigh()
				counter.Add(1)
			}
		}()
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				p.LockLow()
				shared++
				p.UnlockLow()
				counter.Add(1)
			}
		}()
	}
	wg.Wait()
	if shared != 8000 {
		t.Fatalf("shared = %d, want 8000", shared)
	}
}

func TestZeroValuesUsable(t *testing.T) {
	var tk Ticket
	tk.Lock()
	tk.Unlock()
	var ts TAS
	ts.Lock()
	ts.Unlock()
	var tt TTAS
	tt.Lock()
	tt.Unlock()
	var pr Priority
	pr.Lock()
	pr.Unlock()
	var m MCS
	var n MCSNode
	m.Acquire(&n)
	m.Release(&n)
}

// Benchmarks: contended acquire/release pairs per lock kind, plus
// sync.Mutex as the NPTL-analogue baseline.
func benchLock(b *testing.B, lock, unlock func()) {
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			lock()
			unlock()
		}
	})
}

func BenchmarkSyncMutex(b *testing.B) {
	var m sync.Mutex
	benchLock(b, m.Lock, m.Unlock)
}

func BenchmarkTicket(b *testing.B) {
	var t Ticket
	benchLock(b, t.Lock, t.Unlock)
}

func BenchmarkTAS(b *testing.B) {
	var t TAS
	benchLock(b, t.Lock, t.Unlock)
}

func BenchmarkTTAS(b *testing.B) {
	var t TTAS
	benchLock(b, t.Lock, t.Unlock)
}

func BenchmarkPriorityHigh(b *testing.B) {
	var p Priority
	benchLock(b, p.LockHigh, p.UnlockHigh)
}

func BenchmarkPriorityLow(b *testing.B) {
	var p Priority
	benchLock(b, p.LockLow, p.UnlockLow)
}

func BenchmarkMCS(b *testing.B) {
	var m MCS
	b.RunParallel(func(pb *testing.PB) {
		var n MCSNode
		for pb.Next() {
			m.Acquire(&n)
			m.Release(&n)
		}
	})
}

// CLH tests live in clh_test.go.

func BenchmarkCLH(b *testing.B) {
	l := NewCLH()
	b.RunParallel(func(pb *testing.PB) {
		n := &CLHNode{}
		for pb.Next() {
			l.Acquire(n)
			n = l.Release(n)
		}
	})
}
