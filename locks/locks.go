// Package locks provides real (non-simulated) implementations of the
// lock algorithms studied in "MPI+Threads: Runtime Contention and
// Remedies" (PPoPP'15), built on sync/atomic and usable in ordinary Go
// programs:
//
//   - Ticket: the FCFS ticket lock of §5.1 (Fig. 4);
//   - Priority: the two-level priority lock of §5.2 (Fig. 7), composed of
//     three ticket locks, which favors "main path" acquirers over
//     "progress loop" acquirers while staying FCFS within each class;
//   - TAS / TTAS: test-and-set spinlocks (related work §8);
//   - MCS: the queue lock of Mellor-Crummey and Scott (related work §8).
//
// Note that goroutines are multiplexed onto OS threads by the Go runtime,
// so the NUMA-level arbitration bias the paper measures for pthread
// mutexes is not observable here (see DESIGN.md); these types reproduce
// the algorithms and their fairness properties, not the hardware bias.
// Spin loops yield with runtime.Gosched so they remain scheduler-friendly.
//
// locks sits outside the simulation's core/shell boundary entirely
// (docs/ARCHITECTURE.md): real goroutine concurrency is its point, so the
// simcheck determinism rules exempt it.
package locks

import (
	"runtime"
	"sync/atomic"
)

// spinYield cooperates with the Go scheduler inside busy-wait loops.
func spinYield(i int) {
	if i%64 == 63 {
		runtime.Gosched()
	}
}

// Ticket is a first-come-first-served ticket lock (paper Fig. 4). The zero
// value is an unlocked lock. It implements sync.Locker.
type Ticket struct {
	next    atomic.Uint64
	serving atomic.Uint64
}

// Lock takes a ticket and busy-waits until served.
func (t *Ticket) Lock() {
	my := t.next.Add(1) - 1
	for i := 0; t.serving.Load() != my; i++ {
		spinYield(i)
	}
}

// Unlock serves the next ticket.
func (t *Ticket) Unlock() {
	t.serving.Add(1)
}

// HasWaiters reports whether any ticket beyond the holder's has been
// issued. Meaningful only when called by the lock holder.
func (t *Ticket) HasWaiters() bool {
	return t.next.Load() > t.serving.Load()+1
}

// TAS is a test-and-set spinlock. The zero value is unlocked.
type TAS struct {
	held atomic.Bool
}

// Lock spins on the atomic swap until it wins.
func (l *TAS) Lock() {
	for i := 0; l.held.Swap(true); i++ {
		spinYield(i)
	}
}

// Unlock releases the lock.
func (l *TAS) Unlock() {
	l.held.Store(false)
}

// TTAS is a test-and-test-and-set spinlock: it spins on a plain load and
// attempts the swap only when the lock looks free, reducing coherence
// traffic versus TAS.
type TTAS struct {
	held atomic.Bool
}

// Lock spins reading until the lock looks free, then races the swap.
func (l *TTAS) Lock() {
	for i := 0; ; i++ {
		if !l.held.Load() && !l.held.Swap(true) {
			return
		}
		spinYield(i)
	}
}

// Unlock releases the lock.
func (l *TTAS) Unlock() {
	l.held.Store(false)
}

// Priority is the paper's two-level arbitration scheme (Fig. 7): high-
// priority acquirers (an MPI call's main path) overtake low-priority ones
// (progress-loop pollers), with FCFS fairness inside each class. The zero
// value is unlocked. Lock/Unlock alias the high-priority path so the type
// satisfies sync.Locker.
type Priority struct {
	h, l, b        Ticket
	alreadyBlocked atomic.Bool
}

// LockHigh enters the critical section at high priority.
func (p *Priority) LockHigh() {
	p.h.Lock()
	if !p.alreadyBlocked.Load() {
		p.b.Lock()
		p.alreadyBlocked.Store(true)
	}
}

// UnlockHigh leaves the high-priority critical section. The last high-
// priority thread (no waiters on the high ticket) lets the low-priority
// class through.
func (p *Priority) UnlockHigh() {
	if !p.h.HasWaiters() {
		p.b.Unlock()
		p.alreadyBlocked.Store(false)
	}
	p.h.Unlock()
}

// LockLow enters the critical section at low priority.
func (p *Priority) LockLow() {
	p.l.Lock()
	p.b.Lock()
}

// UnlockLow leaves the low-priority critical section.
func (p *Priority) UnlockLow() {
	p.b.Unlock()
	p.l.Unlock()
}

// Lock acquires at high priority (sync.Locker).
func (p *Priority) Lock() { p.LockHigh() }

// Unlock releases a high-priority acquisition (sync.Locker).
func (p *Priority) Unlock() { p.UnlockHigh() }

// MCS is the Mellor-Crummey–Scott queue lock: FCFS like Ticket, but each
// waiter spins on its own queue node, avoiding global cache-line storms.
// Acquire returns a token that must be passed to Release.
type MCS struct {
	tail atomic.Pointer[MCSNode]
}

// MCSNode is a waiter's queue node. Nodes may be reused after Release
// returns; a zero node is ready for use.
type MCSNode struct {
	next   atomic.Pointer[MCSNode]
	locked atomic.Bool
}

// Acquire appends n to the queue and waits until n holds the lock.
func (m *MCS) Acquire(n *MCSNode) {
	n.next.Store(nil)
	n.locked.Store(true)
	pred := m.tail.Swap(n)
	if pred == nil {
		return
	}
	pred.next.Store(n)
	for i := 0; n.locked.Load(); i++ {
		spinYield(i)
	}
}

// Release hands the lock to n's successor, if any.
func (m *MCS) Release(n *MCSNode) {
	next := n.next.Load()
	if next == nil {
		if m.tail.CompareAndSwap(n, nil) {
			return
		}
		// A successor is linking itself in; wait for the pointer.
		for i := 0; ; i++ {
			if next = n.next.Load(); next != nil {
				break
			}
			spinYield(i)
		}
	}
	next.locked.Store(false)
}
