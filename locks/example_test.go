package locks_test

import (
	"fmt"
	"sync"

	"mpicontend/locks"
)

// ExampleTicket uses the FCFS ticket lock as a drop-in sync.Locker.
func ExampleTicket() {
	var mu locks.Ticket
	counter := 0
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				mu.Lock()
				counter++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	fmt.Println(counter)
	// Output: 4000
}

// ExamplePriority shows the two-level scheme of the paper's Fig. 7: code
// likely to produce work takes the high path; background polling takes the
// low path and is overtaken by high-priority acquirers.
func ExamplePriority() {
	var mu locks.Priority
	work := 0

	done := make(chan struct{})
	go func() { // background poller
		defer close(done)
		for i := 0; i < 1000; i++ {
			mu.LockLow()
			// poll for something...
			mu.UnlockLow()
		}
	}()

	for i := 0; i < 1000; i++ { // main path
		mu.LockHigh()
		work++
		mu.UnlockHigh()
	}
	<-done
	fmt.Println(work)
	// Output: 1000
}

// ExampleMCS uses the queue lock with an explicit per-goroutine node.
func ExampleMCS() {
	var mu locks.MCS
	counter := 0
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var node locks.MCSNode
			for j := 0; j < 500; j++ {
				mu.Acquire(&node)
				counter++
				mu.Release(&node)
			}
		}()
	}
	wg.Wait()
	fmt.Println(counter)
	// Output: 2000
}
