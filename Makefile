# Single entry point for local development and CI.
#
#   make check   build + vet + simcheck + test — what CI gates on
#   make race    full test suite under the race detector
#   make shuffle test suite with shuffled execution order
#   make soak    quick chaos-experiment soak run
#   make figures regenerate the full figure output
#   make trace   record + validate a Perfetto trace of the fig8a probe

GO ?= go

.PHONY: check build vet simcheck test race shuffle soak figures trace

check: build vet simcheck test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

simcheck:
	$(GO) run ./cmd/simcheck ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

shuffle:
	$(GO) test -shuffle=on ./...

soak:
	$(GO) build -o /tmp/mpistorm ./cmd/mpistorm
	/tmp/mpistorm -quick -experiment chaos

figures:
	$(GO) run ./cmd/mpistorm -experiment all -quick

trace:
	$(GO) run ./cmd/mpitrace -experiment fig8a -quick -check -out artifacts/trace
