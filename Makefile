# Single entry point for local development and CI.
#
#   make check   build + vet + simcheck + test — what CI gates on
#   make race    full test suite under the race detector
#   make shuffle test suite with shuffled execution order
#   make soak    quick chaos-experiment soak run
#   make figures regenerate the full figure output
#   make trace   record + validate a Perfetto trace of the fig8a probe
#   make parity  prove -jobs 1 and -jobs 4 stdout are byte-identical
#   make bench   run the repo benchmarks and emit BENCH_10.json
#   make simcheck-bench  time the whole-module analysis; fail beyond 60s

GO ?= go

.PHONY: check build vet simcheck simcheck-bench test race shuffle soak figures trace parity bench

check: build vet simcheck test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

simcheck:
	$(GO) run ./cmd/simcheck ./...

# Analysis-latency gate: the interprocedural analyzers (call graph, lock
# order, hot-path allocation) must stay fast enough to sit in make check.
# Budget: 60 seconds for the whole module, binary prebuilt so the gate
# times the analysis, not the compiler.
simcheck-bench:
	$(GO) build -o /tmp/simcheck-bench ./cmd/simcheck
	@start=$$(date +%s); \
	/tmp/simcheck-bench ./... || exit 1; \
	end=$$(date +%s); took=$$((end-start)); \
	echo "simcheck ./... took $${took}s (budget 60s)"; \
	if [ $$took -gt 60 ]; then \
		echo "simcheck-bench: FAIL: whole-module analysis exceeded 60s"; exit 1; \
	fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

shuffle:
	$(GO) test -shuffle=on ./...

soak:
	$(GO) build -o /tmp/mpistorm ./cmd/mpistorm
	/tmp/mpistorm -quick -experiment chaos

figures:
	$(GO) run ./cmd/mpistorm -experiment all -quick

trace:
	$(GO) run ./cmd/mpitrace -experiment fig8a -quick -check -out artifacts/trace

# Serial-equivalence gate: the full quick sweep at -jobs 1 (strictly
# serial path) and -jobs 4 (work-stealing pool) must print identical
# bytes, and so must the crashy recovery experiment, the full-size
# sharded-runtime (vci) experiment, and the full-size progress-mode
# experiment on their own — rank crashes, heartbeat detection, the
# revoke/shrink error path, the per-VCI critical sections, the
# progress daemons/continuation dispatch, and the partitioned channels'
# lock-free readiness bitmaps are simulated state like any other, so the
# same seed must reproduce them bit-for-bit at any worker count. cmp
# exits non-zero on the first differing byte.
parity:
	$(GO) build -o /tmp/mpistorm-parity ./cmd/mpistorm
	/tmp/mpistorm-parity -experiment all -quick -jobs 1 > /tmp/parity-jobs1.txt
	/tmp/mpistorm-parity -experiment all -quick -jobs 4 > /tmp/parity-jobs4.txt
	cmp /tmp/parity-jobs1.txt /tmp/parity-jobs4.txt
	/tmp/mpistorm-parity -experiment recovery -jobs 1 > /tmp/parity-recovery-jobs1.txt
	/tmp/mpistorm-parity -experiment recovery -jobs 4 > /tmp/parity-recovery-jobs4.txt
	cmp /tmp/parity-recovery-jobs1.txt /tmp/parity-recovery-jobs4.txt
	/tmp/mpistorm-parity -experiment vci -jobs 1 > /tmp/parity-vci-jobs1.txt
	/tmp/mpistorm-parity -experiment vci -jobs 4 > /tmp/parity-vci-jobs4.txt
	cmp /tmp/parity-vci-jobs1.txt /tmp/parity-vci-jobs4.txt
	/tmp/mpistorm-parity -experiment progress -jobs 1 > /tmp/parity-progress-jobs1.txt
	/tmp/mpistorm-parity -experiment progress -jobs 4 > /tmp/parity-progress-jobs4.txt
	cmp /tmp/parity-progress-jobs1.txt /tmp/parity-progress-jobs4.txt
	/tmp/mpistorm-parity -experiment partitioned -jobs 1 > /tmp/parity-partitioned-jobs1.txt
	/tmp/mpistorm-parity -experiment partitioned -jobs 4 > /tmp/parity-partitioned-jobs4.txt
	cmp /tmp/parity-partitioned-jobs1.txt /tmp/parity-partitioned-jobs4.txt
	@echo "parity OK: -jobs 1 and -jobs 4 output is byte-identical"

# Benchmark report: one timed pass over the repository benchmarks
# (-benchtime=1x keeps it minutes, and allocs/op is exact either way),
# parsed into BENCH_10.json by cmd/benchjson. CI uploads the file as an
# artifact so runs can be diffed for perf/allocation regressions.
bench:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime 1x . ./internal/mpi | $(GO) run ./cmd/benchjson -out BENCH_10.json
